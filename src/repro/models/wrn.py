"""WRN-28-10: the wide residual network (36M weights, CIFAR-10).

Depth 28 means three groups of four basic blocks (two 3x3 convs each)
at widths 160/320/640; the paper's largest model and the one with the
best Procrustes speedup (4x).
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import (
    BatchNorm2d,
    Conv2d,
    GlobalAvgPool,
    Linear,
    ReLU,
    Residual,
    Sequential,
)
from repro.nn.model import Network
from repro.workloads.layer_spec import LayerSpec, conv, fc

__all__ = ["paper_wrn_28_10", "mini_wrn"]


def paper_wrn_28_10(width_multiplier: int = 10) -> list[LayerSpec]:
    """Paper-scale layer specs (CIFAR-10 input, 32x32)."""
    widths = (16 * width_multiplier, 32 * width_multiplier, 64 * width_multiplier)
    blocks_per_group = 4  # (28 - 4) / 6
    specs: list[LayerSpec] = [conv("conv1", c=3, k=16, h=32, r=3)]
    channels = 16
    size = 32
    for group, group_width in enumerate(widths):
        for block in range(blocks_per_group):
            stride = 2 if (group > 0 and block == 0) else 1
            prefix = f"group{group}.block{block}"
            specs.append(
                conv(
                    f"{prefix}.conv1",
                    c=channels,
                    k=group_width,
                    h=size,
                    r=3,
                    stride=stride,
                )
            )
            out_size = size // stride
            specs.append(
                conv(f"{prefix}.conv2", c=group_width, k=group_width,
                     h=out_size, r=3)
            )
            if channels != group_width or stride != 1:
                specs.append(
                    conv(
                        f"{prefix}.shortcut",
                        c=channels,
                        k=group_width,
                        h=size,
                        r=1,
                        stride=stride,
                        padding=0,
                    )
                )
            channels = group_width
            size = out_size
    specs.append(fc("fc", channels, 10))
    return specs


def _wide_block(
    name: str,
    in_channels: int,
    out_channels: int,
    stride: int,
    rng: np.random.Generator,
) -> Residual:
    body = Sequential(
        [
            BatchNorm2d(f"{name}.bn1", in_channels),
            ReLU(f"{name}.relu1"),
            Conv2d(
                f"{name}.conv1",
                in_channels,
                out_channels,
                kernel=3,
                stride=stride,
                padding=1,
                rng=rng,
            ),
            BatchNorm2d(f"{name}.bn2", out_channels),
            ReLU(f"{name}.relu2"),
            Conv2d(
                f"{name}.conv2", out_channels, out_channels, kernel=3,
                padding=1, rng=rng,
            ),
        ],
        name=f"{name}.body",
    )
    shortcut = None
    if in_channels != out_channels or stride != 1:
        shortcut = Conv2d(
            f"{name}.shortcut",
            in_channels,
            out_channels,
            kernel=1,
            stride=stride,
            padding=0,
            rng=rng,
        )
    # Pre-activation blocks sum without a trailing ReLU.
    return Residual(body, shortcut, name=name, final_relu=False)


def mini_wrn(
    n_classes: int = 10,
    in_channels: int = 3,
    width_multiplier: int = 2,
    blocks_per_group: int = 1,
    seed: int = 0,
) -> Network:
    """A trainable scaled-down WRN (pre-activation wide blocks)."""
    rng = np.random.default_rng(seed)
    base = 8
    widths = (base * width_multiplier, 2 * base * width_multiplier)
    layers = [
        Conv2d("conv1", in_channels, base, kernel=3, padding=1, rng=rng)
    ]
    channels = base
    for group, group_width in enumerate(widths):
        for block in range(blocks_per_group):
            stride = 2 if (group > 0 and block == 0) else 1
            layers.append(
                _wide_block(
                    f"group{group}.block{block}",
                    channels,
                    group_width,
                    stride,
                    rng,
                )
            )
            channels = group_width
    layers.extend(
        [
            BatchNorm2d("bn_final", channels),
            ReLU("relu_final"),
            GlobalAvgPool("gap"),
            Linear("fc", channels, n_classes, rng=rng),
        ]
    )
    return Network("mini-wrn", Sequential(layers, name="mini-wrn"))
