"""Model registry: the five paper networks plus Table II reference data.

``PAPER_MODELS`` maps each network to its paper-scale layer specs (fed
to the architecture model) and the values the paper reports in
Table II, so the harness can print paper-vs-reproduced side by side.
``MINI_MODELS`` maps each network to its trainable scaled-down builder
(fed to the training experiments).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.models.densenet import mini_densenet, paper_densenet
from repro.models.mobilenet import mini_mobilenet_v2, paper_mobilenet_v2
from repro.models.resnet import mini_resnet, paper_resnet18
from repro.models.vgg import mini_vgg_s, paper_vgg_s
from repro.models.wrn import mini_wrn, paper_wrn_28_10
from repro.nn.model import Network
from repro.workloads.layer_spec import LayerSpec

__all__ = ["Table2Row", "ModelEntry", "PAPER_MODELS", "MINI_MODELS", "get_specs"]


@dataclass(frozen=True)
class Table2Row:
    """Table II of the paper, one network per row."""

    dataset: str
    dense_size: float  # weights
    dense_macs: float  # per-sample forward MACs
    sparse_size: float
    sparse_macs: float
    sparsity_factor: float
    epochs: int
    dense_accuracy: float
    pruned_accuracy: float


@dataclass(frozen=True)
class ModelEntry:
    """Registry entry tying specs, reference data, and batch size."""

    name: str
    specs: Callable[[], list[LayerSpec]]
    table2: Table2Row
    #: minibatch used by the architecture experiments (Section IV-C
    #: notes training batches of 32-64; we use 64 throughout).
    minibatch: int = 64
    #: Post-ReLU input-activation density range for the weight-update
    #: phase, profiled from mini-model training runs per network family
    #: (wide residual nets run much sparser activations than VGG-style
    #: stacks; MobileNet's linear bottlenecks keep some layers dense).
    act_density_range: tuple[float, float] = (0.35, 0.65)


PAPER_MODELS: dict[str, ModelEntry] = {
    "densenet": ModelEntry(
        name="densenet",
        act_density_range=(0.30, 0.50),
        specs=paper_densenet,
        table2=Table2Row(
            dataset="CIFAR-10",
            dense_size=2.7e6,
            dense_macs=528e6,
            sparse_size=692e3,
            sparse_macs=157e6,
            sparsity_factor=3.9,
            epochs=340,
            dense_accuracy=0.942,
            pruned_accuracy=0.937,
        ),
    ),
    "wrn-28-10": ModelEntry(
        name="wrn-28-10",
        act_density_range=(0.25, 0.40),
        specs=paper_wrn_28_10,
        table2=Table2Row(
            dataset="CIFAR-10",
            dense_size=36e6,
            dense_macs=4e9,
            sparse_size=8.3e6,
            sparse_macs=863e6,
            sparsity_factor=4.3,
            epochs=462,
            dense_accuracy=0.960,
            pruned_accuracy=0.961,
        ),
    ),
    "vgg-s": ModelEntry(
        name="vgg-s",
        act_density_range=(0.40, 0.60),
        specs=paper_vgg_s,
        table2=Table2Row(
            dataset="CIFAR-10",
            dense_size=15e6,
            dense_macs=269e6,
            sparse_size=2.9e6,
            sparse_macs=113e6,
            sparsity_factor=5.2,
            epochs=236,
            dense_accuracy=0.930,
            pruned_accuracy=0.931,
        ),
    ),
    "mobilenet-v2": ModelEntry(
        name="mobilenet-v2",
        act_density_range=(0.30, 0.50),
        specs=paper_mobilenet_v2,
        table2=Table2Row(
            dataset="ImageNet",
            dense_size=3.5e6,
            dense_macs=301e6,
            sparse_size=0.35e6,
            sparse_macs=75e6,
            sparsity_factor=10.0,
            epochs=131,
            dense_accuracy=0.7098,
            pruned_accuracy=0.7113,
        ),
    ),
    "resnet18": ModelEntry(
        name="resnet18",
        act_density_range=(0.30, 0.50),
        specs=paper_resnet18,
        table2=Table2Row(
            dataset="ImageNet",
            dense_size=11.7e6,
            dense_macs=1.8e9,
            sparse_size=1e6,
            sparse_macs=359e6,
            sparsity_factor=11.7,
            epochs=81,
            dense_accuracy=0.6917,
            pruned_accuracy=0.6931,
        ),
    ),
}

#: Trainable mini variants, keyed like PAPER_MODELS.
MINI_MODELS: dict[str, Callable[..., Network]] = {
    "densenet": mini_densenet,
    "wrn-28-10": mini_wrn,
    "vgg-s": mini_vgg_s,
    "mobilenet-v2": mini_mobilenet_v2,
    "resnet18": mini_resnet,
}


def get_specs(name: str) -> list[LayerSpec]:
    """Layer specs for a registered network."""
    try:
        return PAPER_MODELS[name].specs()
    except KeyError:
        raise KeyError(
            f"unknown model {name!r}; choose from {sorted(PAPER_MODELS)}"
        ) from None
