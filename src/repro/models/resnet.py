"""ResNet-18 (11.7M weights, ImageNet) — the paper's highest-sparsity
target (11.7x with Dropback) — plus a mini trainable variant.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import (
    BatchNorm2d,
    Conv2d,
    GlobalAvgPool,
    Linear,
    ReLU,
    Residual,
    Sequential,
)
from repro.nn.model import Network
from repro.workloads.layer_spec import LayerSpec, conv, fc

__all__ = ["paper_resnet18", "mini_resnet"]


def paper_resnet18() -> list[LayerSpec]:
    """Paper-scale layer specs (ImageNet input, 224x224)."""
    specs: list[LayerSpec] = [
        conv("conv1", c=3, k=64, h=224, r=7, stride=2, padding=3)
    ]
    size = 56  # after 3x3 max pooling with stride 2
    channels = 64
    plan = ((64, 2, 1), (128, 2, 2), (256, 2, 2), (512, 2, 2))
    for stage_index, (width, blocks, first_stride) in enumerate(plan):
        for block in range(blocks):
            stride = first_stride if block == 0 else 1
            prefix = f"layer{stage_index + 1}.{block}"
            specs.append(
                conv(
                    f"{prefix}.conv1",
                    c=channels,
                    k=width,
                    h=size,
                    r=3,
                    stride=stride,
                )
            )
            out_size = size // stride
            specs.append(
                conv(f"{prefix}.conv2", c=width, k=width, h=out_size, r=3)
            )
            if stride != 1 or channels != width:
                specs.append(
                    conv(
                        f"{prefix}.downsample",
                        c=channels,
                        k=width,
                        h=size,
                        r=1,
                        stride=stride,
                        padding=0,
                    )
                )
            channels = width
            size = out_size
    specs.append(fc("fc", 512, 1000))
    return specs


def _basic_block(
    name: str,
    in_channels: int,
    out_channels: int,
    stride: int,
    rng: np.random.Generator,
) -> Residual:
    body = Sequential(
        [
            Conv2d(
                f"{name}.conv1",
                in_channels,
                out_channels,
                kernel=3,
                stride=stride,
                padding=1,
                rng=rng,
            ),
            BatchNorm2d(f"{name}.bn1", out_channels),
            ReLU(f"{name}.relu1"),
            Conv2d(
                f"{name}.conv2",
                out_channels,
                out_channels,
                kernel=3,
                padding=1,
                rng=rng,
            ),
            BatchNorm2d(f"{name}.bn2", out_channels),
        ],
        name=f"{name}.body",
    )
    shortcut = None
    if stride != 1 or in_channels != out_channels:
        shortcut = Sequential(
            [
                Conv2d(
                    f"{name}.down",
                    in_channels,
                    out_channels,
                    kernel=1,
                    stride=stride,
                    padding=0,
                    rng=rng,
                ),
                BatchNorm2d(f"{name}.down_bn", out_channels),
            ],
            name=f"{name}.shortcut",
        )
    return Residual(body, shortcut, name=name)


def mini_resnet(
    n_classes: int = 10,
    in_channels: int = 3,
    width: int = 16,
    blocks_per_stage: int = 2,
    seed: int = 0,
) -> Network:
    """A trainable two-stage basic-block ResNet (the ResNet-18 shape)."""
    rng = np.random.default_rng(seed)
    layers = [
        Conv2d("conv1", in_channels, width, kernel=3, padding=1, rng=rng),
        BatchNorm2d("bn1", width),
        ReLU("relu1"),
    ]
    channels = width
    for stage, (stage_width, stride) in enumerate(
        ((width, 1), (2 * width, 2))
    ):
        for block in range(blocks_per_stage):
            layers.append(
                _basic_block(
                    f"stage{stage}.block{block}",
                    channels,
                    stage_width,
                    stride if block == 0 else 1,
                    rng,
                )
            )
            channels = stage_width
    layers.extend(
        [
            GlobalAvgPool("gap"),
            Linear("fc", channels, n_classes, rng=rng),
        ]
    )
    return Network("mini-resnet", Sequential(layers, name="mini-resnet"))
