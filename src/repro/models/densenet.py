"""The paper's small DenseNet: growth 24, 3 blocks x 10 layers, 2.7M
weights, CIFAR-10.

Plain (non-bottleneck) dense layers with transitions that keep the
channel count (no compression) reproduce the quoted 2.7M total.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import (
    BatchNorm2d,
    Concat,
    Conv2d,
    GlobalAvgPool,
    Linear,
    MaxPool2d,
    ReLU,
    Sequential,
)
from repro.nn.model import Network
from repro.workloads.layer_spec import LayerSpec, conv, fc

__all__ = ["paper_densenet", "mini_densenet"]


def paper_densenet(
    growth: int = 24, blocks: int = 3, layers_per_block: int = 10
) -> list[LayerSpec]:
    """Paper-scale layer specs (CIFAR-10 input, 32x32)."""
    specs: list[LayerSpec] = [
        conv("conv0", c=3, k=growth, h=32, r=3)
    ]
    channels = growth
    size = 32
    for block in range(blocks):
        for layer in range(layers_per_block):
            specs.append(
                conv(
                    f"block{block}.layer{layer}",
                    c=channels,
                    k=growth,
                    h=size,
                    r=3,
                )
            )
            channels += growth
        if block != blocks - 1:
            specs.append(
                conv(
                    f"trans{block}",
                    c=channels,
                    k=channels,
                    h=size,
                    r=1,
                    padding=0,
                )
            )
            size //= 2
    specs.append(fc("fc", channels, 10))
    return specs


def _dense_layer(
    name: str, in_channels: int, growth: int, rng: np.random.Generator
) -> Concat:
    body = Sequential(
        [
            BatchNorm2d(f"{name}.bn", in_channels),
            ReLU(f"{name}.relu"),
            Conv2d(f"{name}.conv", in_channels, growth, kernel=3, padding=1,
                   rng=rng),
        ],
        name=f"{name}.body",
    )
    return Concat(body, name=name)


def mini_densenet(
    n_classes: int = 10,
    in_channels: int = 3,
    growth: int = 8,
    blocks: int = 2,
    layers_per_block: int = 3,
    seed: int = 0,
) -> Network:
    """A trainable scaled-down DenseNet (concat growth intact)."""
    rng = np.random.default_rng(seed)
    layers = [
        Conv2d("conv0", in_channels, growth, kernel=3, padding=1, rng=rng)
    ]
    channels = growth
    for block in range(blocks):
        for index in range(layers_per_block):
            layers.append(
                _dense_layer(f"block{block}.layer{index}", channels, growth,
                             rng)
            )
            channels += growth
        if block != blocks - 1:
            layers.extend(
                [
                    Conv2d(
                        f"trans{block}",
                        channels,
                        channels,
                        kernel=1,
                        padding=0,
                        rng=rng,
                    ),
                    MaxPool2d(f"trans{block}.pool"),
                ]
            )
    layers.extend(
        [
            BatchNorm2d("bn_final", channels),
            ReLU("relu_final"),
            GlobalAvgPool("gap"),
            Linear("fc", channels, n_classes, rng=rng),
        ]
    )
    return Network("mini-densenet", Sequential(layers, name="mini-densenet"))
