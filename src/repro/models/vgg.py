"""VGG-S: the 15M-weight reduced VGG-16 used on CIFAR-10.

The paper's VGG-S follows Zagoruyko's CIFAR VGG (the 13 VGG-16 conv
layers with 2x2 pooling after each width block, then 512->512->10
fully-connected), a 9.2x parameter reduction versus VGG-16 that lands
at ~15M weights.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import (
    BatchNorm2d,
    Conv2d,
    Flatten,
    Linear,
    MaxPool2d,
    ReLU,
    Sequential,
)
from repro.nn.model import Network
from repro.workloads.layer_spec import LayerSpec, conv, fc

__all__ = ["paper_vgg_s", "mini_vgg_s"]

#: Channel plan of the 13 conv layers; 'M' marks 2x2 max pooling.
_VGG_PLAN = (
    64, 64, "M",
    128, 128, "M",
    256, 256, 256, "M",
    512, 512, 512, "M",
    512, 512, 512, "M",
)


def paper_vgg_s() -> list[LayerSpec]:
    """Paper-scale layer specs (CIFAR-10 input, 32x32)."""
    specs: list[LayerSpec] = []
    channels = 3
    size = 32
    index = 0
    for entry in _VGG_PLAN:
        if entry == "M":
            size //= 2
            continue
        specs.append(
            conv(f"conv{index}", c=channels, k=int(entry), h=size, r=3)
        )
        channels = int(entry)
        index += 1
    specs.append(fc("fc0", 512, 512))
    specs.append(fc("fc1", 512, 10))
    return specs


def mini_vgg_s(
    n_classes: int = 10,
    in_channels: int = 3,
    image_size: int = 16,
    width: int = 16,
    seed: int = 0,
) -> Network:
    """A trainable scaled-down VGG-S for the synthetic datasets.

    Keeps the architecture shape (3x3 conv blocks with doubling widths
    separated by pooling, then a small fc head) at a size that trains
    in seconds on the NumPy substrate.
    """
    rng = np.random.default_rng(seed)
    plan = (width, width, "M", 2 * width, 2 * width, "M", 4 * width, "M")
    layers = []
    channels = in_channels
    size = image_size
    index = 0
    for entry in plan:
        if entry == "M":
            layers.append(MaxPool2d(f"pool{index}"))
            size //= 2
            continue
        out = int(entry)
        layers.append(
            Conv2d(f"conv{index}", channels, out, kernel=3, padding=1, rng=rng)
        )
        layers.append(BatchNorm2d(f"bn{index}", out))
        layers.append(ReLU(f"relu{index}"))
        channels = out
        index += 1
    layers.append(Flatten())
    flat = channels * size * size
    layers.append(Linear("fc0", flat, 2 * width, rng=rng))
    layers.append(ReLU("relu_fc0"))
    layers.append(Linear("fc1", 2 * width, n_classes, rng=rng))
    return Network("mini-vgg-s", Sequential(layers, name="mini-vgg-s"))
