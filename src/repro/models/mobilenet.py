"""MobileNet v2 (3.5M weights, ImageNet).

The depthwise-separable bottlenecks limit data reuse, which is why the
paper finds MobileNet v2 spends comparatively more energy on DRAM and
benefits less in energy (2.39x) than reuse-rich networks — while still
speeding up almost as much as the best case (3.88x).
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import (
    BatchNorm2d,
    Conv2d,
    GlobalAvgPool,
    Linear,
    ReLU,
    Residual,
    Sequential,
)
from repro.nn.model import Network
from repro.workloads.layer_spec import LayerSpec, conv, fc

__all__ = ["paper_mobilenet_v2", "mini_mobilenet_v2"]

#: The standard (t, c, n, s) bottleneck table of MobileNet v2.
_BOTTLENECKS = (
    (1, 16, 1, 1),
    (6, 24, 2, 2),
    (6, 32, 3, 2),
    (6, 64, 4, 2),
    (6, 96, 3, 1),
    (6, 160, 3, 2),
    (6, 320, 1, 1),
)


def paper_mobilenet_v2() -> list[LayerSpec]:
    """Paper-scale layer specs (ImageNet input, 224x224)."""
    specs: list[LayerSpec] = [
        conv("conv1", c=3, k=32, h=224, r=3, stride=2)
    ]
    size = 112
    channels = 32
    for stage, (t, c_out, n, s) in enumerate(_BOTTLENECKS):
        for block in range(n):
            stride = s if block == 0 else 1
            hidden = channels * t
            prefix = f"bneck{stage}.{block}"
            if t != 1:
                specs.append(
                    conv(
                        f"{prefix}.expand",
                        c=channels,
                        k=hidden,
                        h=size,
                        r=1,
                        padding=0,
                    )
                )
            specs.append(
                conv(
                    f"{prefix}.depthwise",
                    c=hidden,
                    k=hidden,
                    h=size,
                    r=3,
                    stride=stride,
                    groups=hidden,
                )
            )
            size //= stride
            specs.append(
                conv(
                    f"{prefix}.project",
                    c=hidden,
                    k=c_out,
                    h=size,
                    r=1,
                    padding=0,
                )
            )
            channels = c_out
    specs.append(
        conv("conv_last", c=channels, k=1280, h=size, r=1, padding=0)
    )
    specs.append(fc("fc", 1280, 1000))
    return specs


def _inverted_residual(
    name: str,
    in_channels: int,
    out_channels: int,
    expansion: int,
    stride: int,
    rng: np.random.Generator,
) -> Sequential | Residual:
    hidden = in_channels * expansion
    body_layers = []
    if expansion != 1:
        body_layers.extend(
            [
                Conv2d(
                    f"{name}.expand",
                    in_channels,
                    hidden,
                    kernel=1,
                    padding=0,
                    rng=rng,
                ),
                BatchNorm2d(f"{name}.bn_expand", hidden),
                ReLU(f"{name}.relu_expand"),
            ]
        )
    body_layers.extend(
        [
            Conv2d(
                f"{name}.depthwise",
                hidden,
                hidden,
                kernel=3,
                stride=stride,
                padding=1,
                groups=hidden,
                rng=rng,
            ),
            BatchNorm2d(f"{name}.bn_dw", hidden),
            ReLU(f"{name}.relu_dw"),
            Conv2d(
                f"{name}.project", hidden, out_channels, kernel=1, padding=0,
                rng=rng,
            ),
            BatchNorm2d(f"{name}.bn_project", out_channels),
        ]
    )
    body = Sequential(body_layers, name=f"{name}.body")
    if stride == 1 and in_channels == out_channels:
        # Linear bottleneck: residual connection without a final ReLU.
        return Residual(body, None, name=name, final_relu=False)
    return body


def mini_mobilenet_v2(
    n_classes: int = 10,
    in_channels: int = 3,
    width: int = 8,
    seed: int = 0,
) -> Network:
    """A trainable scaled-down MobileNet v2 (depthwise blocks intact)."""
    rng = np.random.default_rng(seed)
    layers = [
        Conv2d("conv1", in_channels, width, kernel=3, padding=1, rng=rng),
        BatchNorm2d("bn1", width),
        ReLU("relu1"),
    ]
    plan = ((1, width, 1), (2, 2 * width, 2), (2, 2 * width, 1))
    channels = width
    for index, (t, c_out, stride) in enumerate(plan):
        layers.append(
            _inverted_residual(
                f"bneck{index}", channels, c_out, t, stride, rng
            )
        )
        channels = c_out
    layers.extend(
        [
            Conv2d("conv_last", channels, 4 * width, kernel=1, padding=0,
                   rng=rng),
            BatchNorm2d("bn_last", 4 * width),
            ReLU("relu_last"),
            GlobalAvgPool("gap"),
            Linear("fc", 4 * width, n_classes, rng=rng),
        ]
    )
    return Network(
        "mini-mobilenet-v2", Sequential(layers, name="mini-mobilenet-v2")
    )
