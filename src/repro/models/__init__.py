"""The five paper CNNs: paper-scale specs and mini trainable variants."""

from repro.models.densenet import mini_densenet, paper_densenet
from repro.models.mobilenet import mini_mobilenet_v2, paper_mobilenet_v2
from repro.models.resnet import mini_resnet, paper_resnet18
from repro.models.vgg import mini_vgg_s, paper_vgg_s
from repro.models.wrn import mini_wrn, paper_wrn_28_10
from repro.models.zoo import (
    MINI_MODELS,
    ModelEntry,
    PAPER_MODELS,
    Table2Row,
    get_specs,
)

__all__ = [
    "mini_densenet",
    "paper_densenet",
    "mini_mobilenet_v2",
    "paper_mobilenet_v2",
    "mini_resnet",
    "paper_resnet18",
    "mini_vgg_s",
    "paper_vgg_s",
    "mini_wrn",
    "paper_wrn_28_10",
    "MINI_MODELS",
    "PAPER_MODELS",
    "ModelEntry",
    "Table2Row",
    "get_specs",
]
