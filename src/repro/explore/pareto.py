"""Pareto-frontier utilities: dominance, hypervolume, frontier diff.

The explorer compares design points on a vector of objectives
(latency, energy, area, ...) rather than a single scalar, so "best" is
a *set*: the non-dominated frontier.  :class:`ParetoFrontier` keeps
that set incrementally — each candidate is admitted or rejected as it
is evaluated, and admitting a point evicts anything it newly
dominates — so a search strategy can steer toward the frontier while
the search is still running.

Conventions, pinned down because the tests rely on them:

* Every objective is normalized to *minimization* internally; an
  :class:`Objective` with ``minimize=False`` has its values negated.
* ``a`` dominates ``b`` iff ``a`` is no worse on every objective and
  strictly better on at least one.  Ties (identical vectors) dominate
  in neither direction, and the frontier keeps every tied point.
* Hypervolume is the volume (in normalized, minimized space) between
  the frontier and a reference point that must be weakly worse than
  every frontier point; bigger is better.  With one objective it
  degenerates to ``ref - best``.
* :func:`frontier_diff` compares two frontiers by objective vector:
  points only in the new frontier are "gained", points only in the
  old are "lost" — the regression check for "did this code change
  move the frontier?".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping, Sequence

__all__ = [
    "FrontierDiff",
    "FrontierPoint",
    "Objective",
    "ParetoFrontier",
    "dominates",
    "frontier_diff",
    "hypervolume",
]


@dataclass(frozen=True)
class Objective:
    """One optimization axis: a result key plus a direction."""

    key: str
    minimize: bool = True

    def __post_init__(self) -> None:
        if not self.key:
            raise ValueError("objective key must be non-empty")

    @classmethod
    def parse(cls, spec: "Objective | str") -> "Objective":
        """Accept ``Objective``, ``"key"``, or ``"key:max"``."""
        if isinstance(spec, Objective):
            return spec
        key, _, direction = spec.partition(":")
        if direction not in ("", "min", "max"):
            raise ValueError(
                f"objective direction must be 'min' or 'max', "
                f"got {direction!r}"
            )
        return cls(key=key, minimize=direction != "max")


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True iff minimized vector ``a`` Pareto-dominates ``b``."""
    if len(a) != len(b):
        raise ValueError(
            f"objective vectors differ in length ({len(a)} vs {len(b)})"
        )
    return all(x <= y for x, y in zip(a, b)) and any(
        x < y for x, y in zip(a, b)
    )


@dataclass(frozen=True)
class FrontierPoint:
    """One non-dominated design point: parameters plus objectives."""

    params: Mapping[str, Any]
    values: Mapping[str, Any]
    vector: tuple[float, ...]


class ParetoFrontier:
    """An incrementally maintained non-dominated set.

    Construct with the objective specs (``Objective`` instances or
    ``"key"`` / ``"key:max"`` strings), then :meth:`add` every
    evaluated candidate; the frontier keeps exactly the non-dominated
    ones, in insertion order.
    """

    def __init__(self, objectives: Sequence[Objective | str]) -> None:
        if not objectives:
            raise ValueError("at least one objective is required")
        self.objectives = tuple(Objective.parse(o) for o in objectives)
        keys = [o.key for o in self.objectives]
        if len(set(keys)) != len(keys):
            raise ValueError(f"duplicate objective keys in {keys}")
        self._points: list[FrontierPoint] = []

    def vector(self, values: Mapping[str, Any]) -> tuple[float, ...]:
        """The normalized (all-minimized) objective vector of a result."""
        out = []
        for objective in self.objectives:
            try:
                v = float(values[objective.key])
            except KeyError:
                raise KeyError(
                    f"objective {objective.key!r} missing from result; "
                    f"available columns: {sorted(values)}"
                ) from None
            out.append(v if objective.minimize else -v)
        return tuple(out)

    def add(
        self, params: Mapping[str, Any], values: Mapping[str, Any]
    ) -> bool:
        """Admit a candidate; True iff it joins the frontier.

        A dominated candidate is rejected; an admitted one evicts the
        points it dominates.  An exact objective tie with an existing
        point is admitted (both stay — they are distinct designs with
        equal cost).
        """
        vector = self.vector(values)
        for existing in self._points:
            if dominates(existing.vector, vector):
                return False
        self._points = [
            p for p in self._points if not dominates(vector, p.vector)
        ]
        self._points.append(
            FrontierPoint(params=dict(params), values=dict(values),
                          vector=vector)
        )
        return True

    @property
    def points(self) -> tuple[FrontierPoint, ...]:
        return tuple(self._points)

    def __len__(self) -> int:
        return len(self._points)

    def __iter__(self) -> Iterator[FrontierPoint]:
        return iter(self._points)

    def vectors(self) -> list[tuple[float, ...]]:
        return [p.vector for p in self._points]

    def hypervolume(
        self, reference: Sequence[float] | None = None
    ) -> float:
        """Dominated hypervolume up to ``reference`` (see module doc).

        Without an explicit reference the nadir of the frontier's own
        vectors is used (the componentwise worst), which makes single
        runs comparable to themselves over time but NOT across runs —
        pass a fixed reference to compare two searches.
        """
        return hypervolume(self.vectors(), reference)

    def sorted_points(self, objective_index: int = 0) -> list[FrontierPoint]:
        """Frontier points ordered along one objective (for tables)."""
        return sorted(self._points, key=lambda p: p.vector[objective_index])


def hypervolume(
    vectors: Sequence[Sequence[float]],
    reference: Sequence[float] | None = None,
) -> float:
    """Hypervolume dominated by minimized ``vectors`` w.r.t. a reference.

    Exact recursive slicing (adequate for the explorer's small
    frontiers and 2-4 objectives): sweep the first coordinate and
    integrate the (d-1)-dimensional hypervolume of the points seen so
    far.  Points at or beyond the reference contribute nothing; an
    empty input has volume 0.
    """
    vectors = [tuple(float(x) for x in v) for v in vectors]
    if not vectors:
        return 0.0
    dims = {len(v) for v in vectors}
    if len(dims) != 1:
        raise ValueError(f"mixed vector lengths {sorted(dims)}")
    (d,) = dims
    if reference is None:
        reference = tuple(max(v[i] for v in vectors) for i in range(d))
    reference = tuple(float(x) for x in reference)
    if len(reference) != d:
        raise ValueError(
            f"reference has {len(reference)} components, vectors have {d}"
        )
    for v in vectors:
        if any(x > r for x, r in zip(v, reference)):
            raise ValueError(
                f"vector {v} is worse than the reference {reference}"
            )
    return _hv(sorted(set(vectors)), reference)


def _hv(vectors: list[tuple[float, ...]], ref: tuple[float, ...]) -> float:
    if not vectors:
        return 0.0
    if len(ref) == 1:
        return ref[0] - min(v[0] for v in vectors)
    # Sweep the first coordinate: between consecutive distinct x
    # values the dominated cross-section is constant, so the volume is
    # sum(slab width x cross-section hypervolume of points with
    # x <= slab start).
    total = 0.0
    xs = sorted({v[0] for v in vectors})
    for i, x in enumerate(xs):
        width = (xs[i + 1] if i + 1 < len(xs) else ref[0]) - x
        if width <= 0:
            continue
        slice_points = [v[1:] for v in vectors if v[0] <= x]
        total += width * _hv(sorted(set(slice_points)), ref[1:])
    return total


@dataclass(frozen=True)
class FrontierDiff:
    """Set difference of two frontiers, keyed by objective vector."""

    gained: tuple[FrontierPoint, ...] = ()
    lost: tuple[FrontierPoint, ...] = ()
    common: tuple[FrontierPoint, ...] = field(default=())

    @property
    def unchanged(self) -> bool:
        return not self.gained and not self.lost

    def summary(self) -> str:
        return (
            f"+{len(self.gained)} gained, -{len(self.lost)} lost, "
            f"{len(self.common)} unchanged"
        )


def frontier_diff(
    new: ParetoFrontier, old: ParetoFrontier
) -> FrontierDiff:
    """Compare two frontiers over the same objectives.

    Points are matched by objective vector (two runs that land
    different parameter assignments on identical costs count as
    unchanged — the frontier's *shape* is what regression checks care
    about).
    """
    if [o for o in new.objectives] != [o for o in old.objectives]:
        raise ValueError(
            f"frontiers optimize different objectives: "
            f"{new.objectives} vs {old.objectives}"
        )
    old_vectors = {p.vector for p in old}
    new_vectors = {p.vector for p in new}
    return FrontierDiff(
        gained=tuple(p for p in new if p.vector not in old_vectors),
        lost=tuple(p for p in old if p.vector not in new_vectors),
        common=tuple(p for p in new if p.vector in old_vectors),
    )
