"""Search strategies: how the explorer proposes candidate batches.

A strategy is a stateful proposer: the explorer repeatedly calls
:meth:`SearchStrategy.propose` with the space, a deterministic
``random.Random`` stream, and the search state so far (evaluated keys
plus the current Pareto frontier), and the strategy answers with the
next batch of candidate parameter dicts — or ``None`` when it has
nothing left to suggest.  Batching matters: every batch becomes one
explicit :class:`~repro.sweep.spec.SweepSpec`, so its points evaluate
in parallel and land in the shared result cache.

Three built-ins cover the classic trade-offs:

* :class:`GridStrategy` — exhaustive enumeration, exact but only
  viable for small spaces (it is what the paper's own Figures 18/19
  do with four hand-picked mappings);
* :class:`RandomStrategy` — uniform sampling, the budget-bounded
  default for large spaces;
* :class:`GreedyRefineStrategy` — random warm-up, then hill-climbing:
  propose the unexplored one-step neighbors of current frontier
  points, so effort concentrates near the frontier.

All are deterministic given the seed the explorer feeds the stream:
same seed, same space, same evaluator results ⇒ same proposals, same
frontier.

Strategies are **single-use**: each instance carries iteration state
(what it has proposed so far), so after its run ends — whether the
strategy exhausted itself or the explorer's budget cut it off
mid-batch, discarding proposals the instance had already consumed —
it is spent, and further use raises rather than silently skipping
candidates.  Construct a fresh instance per :meth:`Explorer.run`
call; to search deeper, re-run with a larger budget against the same
cache (completed evaluations replay for free).
"""

from __future__ import annotations

import random
from typing import Any, Iterator, Mapping, Protocol

from repro.explore.pareto import ParetoFrontier
from repro.explore.space import SearchSpace

__all__ = [
    "GreedyRefineStrategy",
    "GridStrategy",
    "RandomStrategy",
    "SearchStrategy",
    "make_strategy",
]


class SearchStrategy(Protocol):
    """The proposer protocol the explorer drives (see module doc)."""

    name: str

    def propose(
        self,
        space: SearchSpace,
        rng: random.Random,
        frontier: ParetoFrontier,
        evaluated: Mapping[str, Mapping[str, Any]],
    ) -> list[dict[str, Any]] | None:
        """Next candidate batch, or ``None`` when exhausted."""
        ...


def _check_not_exhausted(strategy) -> None:
    """Guard against reusing a spent strategy instance (see module doc).

    Without this, a second :meth:`Explorer.run` with the same instance
    would silently return an empty result.
    """
    if getattr(strategy, "_done", False):
        raise ValueError(
            f"{type(strategy).__name__} is exhausted; strategies are "
            "single-use — construct a new instance per explore run"
        )


class GridStrategy:
    """Exhaustive enumeration of the feasible grid, in batches."""

    name = "grid"

    def __init__(self, batch_size: int = 32) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.batch_size = batch_size
        self._iterator: Iterator[dict[str, Any]] | None = None
        self._done = False

    def propose(
        self,
        space: SearchSpace,
        rng: random.Random,
        frontier: ParetoFrontier,
        evaluated: Mapping[str, Mapping[str, Any]],
    ) -> list[dict[str, Any]] | None:
        _check_not_exhausted(self)
        if self._iterator is None:
            self._iterator = space.grid()
        batch: list[dict[str, Any]] = []
        for params in self._iterator:
            if space.key(params) in evaluated:
                continue
            batch.append(params)
            if len(batch) >= self.batch_size:
                return batch
        if not batch:
            self._done = True
            return None
        return batch


class RandomStrategy:
    """Uniform feasible sampling up to a fixed number of candidates."""

    name = "random"

    def __init__(self, n_samples: int = 128, batch_size: int = 32) -> None:
        if n_samples < 1 or batch_size < 1:
            raise ValueError("n_samples and batch_size must be >= 1")
        self.n_samples = n_samples
        self.batch_size = batch_size
        self._proposed = 0
        self._done = False

    def propose(
        self,
        space: SearchSpace,
        rng: random.Random,
        frontier: ParetoFrontier,
        evaluated: Mapping[str, Mapping[str, Any]],
    ) -> list[dict[str, Any]] | None:
        _check_not_exhausted(self)
        remaining = self.n_samples - self._proposed
        if remaining <= 0:
            self._done = True
            return None
        batch = space.sample(
            rng, min(self.batch_size, remaining), exclude=set(evaluated)
        )
        if not batch:
            self._done = True
            return None
        self._proposed += len(batch)
        return batch


class GreedyRefineStrategy:
    """Random warm-up, then neighborhood refinement of the frontier.

    Each refinement round proposes every not-yet-evaluated one-step
    neighbor of every current frontier point (deduplicated, in
    frontier order).  The search stops after ``max_rounds`` rounds or
    as soon as a round finds the frontier's whole neighborhood already
    explored — i.e. the frontier is locally optimal under the space's
    move set.
    """

    name = "greedy"

    def __init__(self, n_init: int = 32, max_rounds: int = 8) -> None:
        if n_init < 1 or max_rounds < 0:
            raise ValueError("n_init must be >= 1 and max_rounds >= 0")
        self.n_init = n_init
        self.max_rounds = max_rounds
        self._warmed_up = False
        self._rounds = 0
        self._done = False

    def propose(
        self,
        space: SearchSpace,
        rng: random.Random,
        frontier: ParetoFrontier,
        evaluated: Mapping[str, Mapping[str, Any]],
    ) -> list[dict[str, Any]] | None:
        _check_not_exhausted(self)
        if not self._warmed_up:
            self._warmed_up = True
            batch = space.sample(rng, self.n_init, exclude=set(evaluated))
            if batch:
                return batch
            # Nothing new to seed with; fall through to refinement of
            # whatever frontier the caller already has.
        if self._rounds >= self.max_rounds:
            self._done = True
            return None
        self._rounds += 1
        batch = []
        seen: set[str] = set()
        for point in frontier:
            for neighbor in space.neighbors(point.params):
                key = space.key(neighbor)
                if key in evaluated or key in seen:
                    continue
                seen.add(key)
                batch.append(neighbor)
        if not batch:
            # An empty round means the frontier's whole neighborhood
            # is explored: locally optimal under the space's move set.
            self._done = True
            return None
        return batch


def make_strategy(
    name: str, **options: Any
) -> GridStrategy | RandomStrategy | GreedyRefineStrategy:
    """Strategy factory for the CLI (``grid``, ``random``, ``greedy``)."""
    strategies: dict[str, Any] = {
        "grid": GridStrategy,
        "random": RandomStrategy,
        "greedy": GreedyRefineStrategy,
    }
    try:
        cls = strategies[name]
    except KeyError:
        raise KeyError(
            f"unknown strategy {name!r}; choose from {sorted(strategies)}"
        ) from None
    return cls(**options)
