"""The explorer: strategy-proposed batches, sweep-evaluated, Pareto-pruned.

:func:`explore` (or :class:`Explorer` for reuse) closes the loop
between the other pieces of this package: a search strategy proposes
candidate batches from a :class:`~repro.explore.space.SearchSpace`,
each batch becomes an *explicit* :class:`~repro.sweep.spec.SweepSpec`
evaluated by the shared :class:`~repro.sweep.runner.SweepRunner`
(cached, optionally process-parallel), and every result feeds the
incremental :class:`~repro.explore.pareto.ParetoFrontier`.

Because evaluation rides the sweep cache with derived per-point seeds,
identical candidates cost nothing on re-exploration — a warm re-run of
a whole search is limited by cache reads, not simulator calls, and two
different strategies exploring overlapping regions share work.  The
budget counts *proposed evaluations* (cached or not), so a run is
reproducible: same space, strategy, seed, and budget ⇒ the same
candidates in the same order ⇒ the same frontier.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.explore.pareto import FrontierPoint, Objective, ParetoFrontier
from repro.explore.space import SearchSpace
from repro.explore.strategies import SearchStrategy
from repro.report.export import experiment_record
from repro.sweep.cache import ResultCache
from repro.sweep.runner import SweepRunner
from repro.sweep.spec import SweepSpec

__all__ = [
    "DEFAULT_OBJECTIVES",
    "TRAJECTORY_OBJECTIVES",
    "Evaluation",
    "ExploreResult",
    "Explorer",
    "explore",
]

#: Default objective vector: the three axes the paper trades off
#: (per-iteration latency/energy from the static analytic profile).
DEFAULT_OBJECTIVES = ("total_cycles", "total_j", "area_mm2")

#: Training-in-the-loop objective vector: whole-run latency/energy from
#: replaying a measured campaign trajectory (the ``trajectory-point``
#: evaluator) instead of a single static iteration.
TRAJECTORY_OBJECTIVES = ("run_cycles", "run_j", "area_mm2")


@dataclass(frozen=True)
class Evaluation:
    """One evaluated candidate: parameters, result values, provenance."""

    params: Mapping[str, Any]
    values: Mapping[str, Any]
    seed: int
    cached: bool
    on_frontier: bool


@dataclass
class ExploreResult:
    """Everything one exploration produced.

    ``evaluations`` is every candidate in evaluation order;
    ``frontier`` is the final non-dominated set.  ``to_record``
    exports the run in the canonical :mod:`repro.report` shape, and
    ``frontier_rows`` flattens the frontier for tables/CSV.

    ``budget_exhausted`` is True when the run stopped at the
    evaluation budget rather than because the strategy finished — for
    an enumerative strategy that means the frontier may describe a
    *truncated* sample of the space, not all of it.
    """

    name: str
    strategy: str
    objectives: tuple[Objective, ...]
    frontier: ParetoFrontier
    evaluations: list[Evaluation] = field(default_factory=list)
    n_rounds: int = 0
    budget_exhausted: bool = False
    wall_time_s: float = 0.0
    cache_stats: dict[str, int] = field(default_factory=dict)

    @property
    def n_evaluated(self) -> int:
        return len(self.evaluations)

    @property
    def n_cached(self) -> int:
        return sum(1 for e in self.evaluations if e.cached)

    def frontier_points(self) -> list[FrontierPoint]:
        """The frontier, sorted along the first objective."""
        return self.frontier.sorted_points(0)

    def objective_columns(self) -> dict[str, list[float]]:
        """Objective values of *all* evaluations, keyed by objective."""
        return {
            o.key: [float(e.values[o.key]) for e in self.evaluations]
            for o in self.objectives
        }

    def frontier_rows(self) -> list[dict[str, Any]]:
        """Flat params+objectives rows for the frontier (table export)."""
        rows = []
        for point in self.frontier_points():
            row = dict(point.params)
            for objective in self.objectives:
                row[objective.key] = point.values[objective.key]
            rows.append(row)
        return rows

    def to_record(self) -> dict[str, Any]:
        """The canonical :func:`experiment_record` payload."""
        return experiment_record(
            self.name,
            {
                "strategy": self.strategy,
                "objectives": [
                    {"key": o.key, "minimize": o.minimize}
                    for o in self.objectives
                ],
            },
            {
                "frontier": self.frontier_rows(),
                "n_evaluated": self.n_evaluated,
                "n_cached": self.n_cached,
                "n_rounds": self.n_rounds,
                "budget_exhausted": self.budget_exhausted,
                "hypervolume": self.frontier.hypervolume(),
                "wall_time_s": self.wall_time_s,
                "cache": dict(self.cache_stats),
            },
            notes=(
                f"{len(self.frontier)} non-dominated of "
                f"{self.n_evaluated} evaluated candidates"
            ),
        )

    def save(self, results_dir) -> None:
        """Persist via :class:`repro.report.ResultsDirectory`."""
        results_dir.save_record(self.to_record())
        rows = self.frontier_rows()
        if not rows:
            return
        headers = list(rows[0])
        results_dir.save_table(
            self.name,
            "frontier",
            headers,
            [[row.get(h) for h in headers] for row in rows],
        )


class Explorer:
    """Reusable exploration driver (evaluator + runner + objectives).

    ``evaluator`` names any registered sweep evaluator whose result
    mapping contains every objective key; ``cache``/``executor``/
    ``workers``/``config`` configure the underlying
    :class:`SweepRunner` exactly as for a grid sweep (``config`` — a
    :class:`repro.api.RuntimeConfig` — reaches every evaluator call,
    including process-pool workers).
    """

    def __init__(
        self,
        evaluator: str = "design-point",
        objectives: tuple[Objective | str, ...] = DEFAULT_OBJECTIVES,
        cache: ResultCache | None = None,
        executor: str = "serial",
        workers: int | None = None,
        config=None,
    ) -> None:
        self.evaluator = evaluator
        self.objectives = tuple(Objective.parse(o) for o in objectives)
        self.runner = SweepRunner(
            cache=cache, executor=executor, workers=workers, config=config
        )

    def run(
        self,
        space: SearchSpace,
        strategy: SearchStrategy,
        budget: int = 128,
        seed: int = 0,
        name: str = "explore",
    ) -> ExploreResult:
        """Search until the budget or the strategy is exhausted."""
        if budget < 1:
            raise ValueError(f"budget must be >= 1 (got {budget})")
        start = time.perf_counter()
        cache = self.runner.cache
        stats_before = cache.stats.snapshot() if cache is not None else None
        rng = random.Random(seed)
        frontier = ParetoFrontier(self.objectives)
        evaluated: dict[str, Mapping[str, Any]] = {}
        evaluations: list[Evaluation] = []
        rounds = 0
        budget_exhausted = False
        while True:
            if len(evaluations) >= budget:
                budget_exhausted = True
                break
            batch = strategy.propose(space, rng, frontier, evaluated)
            if not batch:
                break
            if len(batch) > budget - len(evaluations):
                # Truncation discards proposals the strategy already
                # consumed, so the instance can never be resumed
                # soundly: mark it spent (its reuse guard will raise).
                batch = batch[: budget - len(evaluations)]
                budget_exhausted = True
                if hasattr(strategy, "_done"):
                    strategy._done = True
            rounds += 1
            spec = SweepSpec.explicit(
                f"{name}-round{rounds}",
                self.evaluator,
                batch,
                base_seed=seed,
                seed_mode="derived",
            )
            result = self.runner.run(spec)
            for point in result.points:
                key = space.key(point.params)
                kept = frontier.add(point.params, point.values)
                evaluated[key] = point.values
                evaluations.append(
                    Evaluation(
                        params=point.params,
                        values=point.values,
                        seed=point.seed,
                        cached=point.cached,
                        on_frontier=kept,
                    )
                )
        # This run's cache traffic, not the cache's lifetime counters
        # (the same Explorer may serve several runs).
        cache_stats = (
            cache.stats.diff(stats_before).as_dict()
            if cache is not None
            else {}
        )
        return ExploreResult(
            name=name,
            strategy=getattr(strategy, "name", type(strategy).__name__),
            objectives=self.objectives,
            frontier=frontier,
            evaluations=evaluations,
            n_rounds=rounds,
            budget_exhausted=budget_exhausted,
            wall_time_s=time.perf_counter() - start,
            cache_stats=cache_stats,
        )


def explore(
    space: SearchSpace,
    strategy: SearchStrategy,
    objectives: tuple[Objective | str, ...] = DEFAULT_OBJECTIVES,
    evaluator: str = "design-point",
    budget: int = 128,
    seed: int = 0,
    cache: ResultCache | None = None,
    executor: str = "serial",
    workers: int | None = None,
    name: str = "explore",
    config=None,
) -> ExploreResult:
    """One-shot convenience wrapper around :class:`Explorer`."""
    return Explorer(
        evaluator=evaluator,
        objectives=objectives,
        cache=cache,
        executor=executor,
        workers=workers,
        config=config,
    ).run(space, strategy, budget=budget, seed=seed, name=name)
