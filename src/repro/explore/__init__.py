"""Pareto design-space exploration over the accelerator models.

The paper picks its spatial-minibatch dataflow by comparing a handful
of hand-chosen mappings (Figures 17-19).  This package *searches*
instead: enumerate or sample candidate design points (mapping x tiling
x array size x buffer capacity x density), prune infeasible ones with
constraint predicates wired to the hardware models, evaluate the rest
through the cached :mod:`repro.sweep` runner, and keep the Pareto
frontier of latency vs. energy vs. area rather than a single operating
point.

The pieces, bottom-up:

* :mod:`repro.explore.pareto` — :class:`ParetoFrontier` (incremental
  dominance pruning), hypervolume, and frontier diffs between runs;
* :mod:`repro.explore.space` — :class:`SearchSpace`: named discrete
  dimensions, fixed parameters, and constraint predicates
  (:func:`fabric_fraction_limit`, :func:`mask_residency_limit`,
  :func:`tiling_chunk_limit`);
* :mod:`repro.explore.strategies` — deterministic grid / random /
  greedy-refinement proposers;
* :mod:`repro.explore.explorer` — the driver: strategy batches become
  explicit sweep specs, results feed the frontier, everything lands in
  the content-addressed result cache so warm re-explorations are
  nearly free.

Quick use::

    from repro.explore import (
        SearchSpace, RandomStrategy, explore, fabric_fraction_limit,
    )

    space = SearchSpace(
        {"mapping": ["PQ", "CK", "CN", "KN"], "array_side": [8, 16, 32]},
        fixed={"network": "vgg-s"},
        constraints=[fabric_fraction_limit(0.30)],
    )
    result = explore(space, RandomStrategy(n_samples=100), seed=1)
    for point in result.frontier_points():
        print(point.params, point.values["total_cycles"])

``python -m repro.harness explore`` runs the paper-anchored default
search; see ``docs/explore.md`` for the full tour.
"""

from repro.explore.explorer import (
    DEFAULT_OBJECTIVES,
    Evaluation,
    ExploreResult,
    Explorer,
    TRAJECTORY_OBJECTIVES,
    explore,
)
from repro.explore.pareto import (
    FrontierDiff,
    FrontierPoint,
    Objective,
    ParetoFrontier,
    dominates,
    frontier_diff,
    hypervolume,
)
from repro.explore.space import (
    Dimension,
    SearchSpace,
    arch_from_params,
    fabric_fraction_limit,
    mask_residency_limit,
    tiling_chunk_limit,
)
from repro.explore.strategies import (
    GreedyRefineStrategy,
    GridStrategy,
    RandomStrategy,
    SearchStrategy,
    make_strategy,
)

__all__ = [
    "DEFAULT_OBJECTIVES",
    "TRAJECTORY_OBJECTIVES",
    "Dimension",
    "Evaluation",
    "ExploreResult",
    "Explorer",
    "FrontierDiff",
    "FrontierPoint",
    "GreedyRefineStrategy",
    "GridStrategy",
    "Objective",
    "ParetoFrontier",
    "RandomStrategy",
    "SearchSpace",
    "SearchStrategy",
    "arch_from_params",
    "dominates",
    "explore",
    "fabric_fraction_limit",
    "frontier_diff",
    "hypervolume",
    "make_strategy",
    "mask_residency_limit",
    "tiling_chunk_limit",
]
