"""Design-space specification: dimensions, fixed knobs, constraints.

A :class:`SearchSpace` is the explorer's input: named discrete
dimensions (mapping, array side, buffer capacities, sparsity, ...)
over a shared set of fixed parameters, plus *constraint predicates*
that prune infeasible assignments before any simulation runs.  The
space only describes candidates — a candidate is a plain parameter
dict that the ``design-point`` sweep evaluator (or any registered
evaluator) accepts as keyword arguments, so spaces, sweeps, and the
result cache all speak the same vocabulary.

Constraints are cheap, pure predicates over a candidate dict.  The
built-ins wire in the hardware models the paper argues from:
:func:`fabric_fraction_limit` (the simple 3-network fabric must stay a
small share of the array, :mod:`repro.hw.fabric_cost`),
:func:`mask_residency_limit` (active CSB masks must fit the GLB's
metadata share, :mod:`repro.hw.capacity`), and
:func:`tiling_chunk_limit` (the register file must be large enough
that stationary tiles don't shatter into absurd chunk counts,
:mod:`repro.dataflow.tiling`).  User constraints are any
``(name, predicate)`` pair.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from functools import lru_cache
from typing import Any, Callable, Iterator, Mapping, Sequence

from repro.hw.config import arch_from_params
from repro.sweep.spec import canonical_json

__all__ = [
    "Constraint",
    "Dimension",
    "SearchSpace",
    "arch_from_params",
    "fabric_fraction_limit",
    "mask_residency_limit",
    "tiling_chunk_limit",
]

#: A feasibility predicate over one candidate parameter dict.
Constraint = tuple[str, Callable[[Mapping[str, Any]], bool]]


@dataclass(frozen=True)
class Dimension:
    """One named discrete dimension of the design space."""

    name: str
    values: tuple[Any, ...]

    def __init__(self, name: str, values: Sequence[Any]) -> None:
        if not name:
            raise ValueError("dimension name must be non-empty")
        values = tuple(values)
        if not values:
            raise ValueError(f"dimension {name!r} has no values")
        for v in values:
            canonical_json(v)  # same identity rules as sweep axes
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "values", values)


class SearchSpace:
    """Discrete candidate space with constraint-based pruning.

    ``dimensions`` maps names to value sequences; ``fixed`` parameters
    ride along on every candidate; ``constraints`` is a sequence of
    ``(name, predicate)`` pairs — a candidate is feasible iff every
    predicate accepts it.
    """

    def __init__(
        self,
        dimensions: Mapping[str, Sequence[Any]],
        fixed: Mapping[str, Any] | None = None,
        constraints: Sequence[Constraint] = (),
    ) -> None:
        if not dimensions:
            raise ValueError("a search space needs at least one dimension")
        self.dimensions = tuple(
            Dimension(name, values) for name, values in dimensions.items()
        )
        self.fixed = dict(fixed or {})
        canonical_json(self.fixed)
        overlap = {d.name for d in self.dimensions} & set(self.fixed)
        if overlap:
            raise ValueError(
                f"parameters {sorted(overlap)} appear both as dimensions "
                "and as fixed values"
            )
        self.constraints = tuple(constraints)
        for name, predicate in self.constraints:
            if not name or not callable(predicate):
                raise ValueError(
                    "constraints must be (name, callable) pairs"
                )

    # ------------------------------------------------------------------
    # candidates
    # ------------------------------------------------------------------
    @property
    def n_assignments(self) -> int:
        """Grid size before constraint pruning."""
        count = 1
        for dim in self.dimensions:
            count *= len(dim.values)
        return count

    def candidate(self, assignment: Mapping[str, Any]) -> dict[str, Any]:
        """A full candidate dict: fixed parameters plus one assignment."""
        params = dict(self.fixed)
        params.update(assignment)
        return params

    def key(self, params: Mapping[str, Any]) -> str:
        """Canonical identity of a candidate (dedup / history key)."""
        return canonical_json(dict(params))

    def is_feasible(self, params: Mapping[str, Any]) -> bool:
        return all(predicate(params) for _, predicate in self.constraints)

    def violated(self, params: Mapping[str, Any]) -> list[str]:
        """Names of the constraints a candidate fails (diagnostics)."""
        return [
            name
            for name, predicate in self.constraints
            if not predicate(params)
        ]

    def grid(self) -> Iterator[dict[str, Any]]:
        """Every feasible candidate, in deterministic row-major order."""
        import itertools

        names = [d.name for d in self.dimensions]
        for combo in itertools.product(*(d.values for d in self.dimensions)):
            params = self.candidate(dict(zip(names, combo)))
            if self.is_feasible(params):
                yield params

    def sample(
        self, rng: random.Random, k: int, exclude: set[str] | None = None
    ) -> list[dict[str, Any]]:
        """Up to ``k`` distinct feasible candidates, drawn uniformly.

        ``exclude`` holds canonical keys (:meth:`key`) of candidates
        the caller has already seen; draws stop after a bounded number
        of attempts so a nearly-exhausted space cannot loop forever.
        """
        seen = set(exclude or ())
        out: list[dict[str, Any]] = []
        attempts = 0
        max_attempts = max(50, 20 * k)
        while len(out) < k and attempts < max_attempts:
            attempts += 1
            assignment = {
                d.name: d.values[rng.randrange(len(d.values))]
                for d in self.dimensions
            }
            params = self.candidate(assignment)
            key = self.key(params)
            if key in seen or not self.is_feasible(params):
                continue
            seen.add(key)
            out.append(params)
        return out

    def neighbors(self, params: Mapping[str, Any]) -> list[dict[str, Any]]:
        """Feasible one-step moves: each dimension nudged one value.

        The greedy refinement strategy walks these; order is
        deterministic (dimension order, minus-step before plus-step).
        """
        out: list[dict[str, Any]] = []
        for dim in self.dimensions:
            current = params.get(dim.name)
            try:
                index = dim.values.index(current)
            except ValueError:
                continue
            for step in (-1, 1):
                j = index + step
                if 0 <= j < len(dim.values):
                    moved = dict(params)
                    moved[dim.name] = dim.values[j]
                    if self.is_feasible(moved):
                        out.append(moved)
        return out


# ----------------------------------------------------------------------
# hardware-model hooks
# ----------------------------------------------------------------------
@lru_cache(maxsize=64)
def _profile(network: str, sparse: bool, sparsity_factor: float | None,
             seed: int):
    from repro.harness.common import dense_profile_for, sparse_profile_for

    if not sparse:
        return dense_profile_for(network)
    return sparse_profile_for(
        network, seed=seed, sparsity_factor=sparsity_factor
    )


def fabric_fraction_limit(max_fraction: float = 0.35) -> Constraint:
    """The fabric the mapping *needs* must stay under ``max_fraction``.

    Prices, with :mod:`repro.hw.fabric_cost`, the interconnect a
    candidate actually requires for load balancing: mappings that
    balance on the Figure 14 fabric pay the simple 3-network cost
    (a scale-invariant ~7% of the array in this model), while sparse
    C,K balancing pays the Figure 10 balanced-CK fabric, whose
    crossbar-and-collector wiring grows with the array side (~20% at
    8x8, ~50% at 32x32).  This is the paper's scalability argument as
    a pruning rule: big arrays are only feasible with mappings the
    simple fabric can balance.
    """
    from repro.hw.fabric_cost import FabricCostModel

    def ok(params: Mapping[str, Any]) -> bool:
        model = FabricCostModel(arch_from_params(params))
        fabric = model.fabric_for_mapping(
            str(params.get("mapping", "KN")),
            sparse=bool(params.get("sparse", True)),
        )
        return model.fabric_area_fraction(fabric) <= max_fraction

    return (f"fabric_fraction<={max_fraction:g}", ok)


def mask_residency_limit(n: int = 64, phase: str = "fw") -> Constraint:
    """Active CSB masks must fit the GLB's metadata share.

    The Section IV-B residency check from :mod:`repro.hw.capacity`,
    applied per candidate: sparse candidates whose working-set masks
    overflow the budget are infeasible (dense candidates carry no
    masks and always pass).  A candidate's own ``n`` parameter
    overrides this factory's default minibatch so the screen checks
    the size the evaluator will simulate.
    """
    from repro.hw.capacity import mask_residency_ok

    def ok(params: Mapping[str, Any]) -> bool:
        if not params.get("sparse", True):
            return True
        profile = _profile(
            str(params["network"]),
            True,
            params.get("sparsity_factor"),
            int(params.get("profile_seed", 1)),
        )
        return mask_residency_ok(
            profile,
            arch_from_params(params),
            n=int(params.get("n", n)),
            phase=phase,
        )

    return (f"mask_residency(n={n})", ok)


def tiling_chunk_limit(max_chunks: int = 64) -> Constraint:
    """Stationary tiles must not shatter into too many temporal chunks.

    Uses :func:`repro.dataflow.tiling.stationary_chunks`: a register
    file so small that some layer's stationary tile splits into more
    than ``max_chunks`` working-set chunks spends its time refilling
    tiles (and its chunks get so small the imbalance tail explodes,
    Figure 5) — prune the candidate instead of simulating it.  Only
    the channel-by-minibatch mappings tile the stationary operand this
    way; other mappings pass.
    """
    from repro.dataflow.mapping import spatial_dims
    from repro.dataflow.tiling import stationary_chunks
    from repro.workloads.phases import phase_op

    def ok(params: Mapping[str, Any]) -> bool:
        mapping = str(params.get("mapping", "KN"))
        if mapping not in ("KN", "CN"):
            return True
        arch = arch_from_params(params)
        # Structure only — the dense profile carries the layer shapes.
        profile = _profile(str(params["network"]), False, None, 1)
        for ls in profile.layers:
            op = phase_op(ls.layer, "fw", int(params.get("n", 64)))
            weights_per_unit = (
                ls.layer.weight_count / spatial_dims(op, mapping).size1
            )
            if stationary_chunks(weights_per_unit, arch) > max_chunks:
                return False
        return True

    return (f"stationary_chunks<={max_chunks}", ok)
