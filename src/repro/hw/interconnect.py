"""On-chip interconnect model.

The baseline accelerator (and Procrustes) uses three simple networks
(Table I / Figure 14): a horizontal one-dimensional flow, a vertical
one-dimensional flow, and a unicast network to any PE.  A dataflow is
implementable on this fabric iff each of its three datatypes maps to
one of those flows (Figures 3 and 11).

Load-balancing a weight-stationary C,K mapping breaks this property —
activations would need to travel on rows *and* columns (Figure 10) —
which is the paper's argument for the spatial-minibatch dataflow.
:func:`traffic_pattern` encodes which flow each datatype uses per
(mapping, phase) and whether the simple fabric suffices.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "Flow",
    "TrafficPattern",
    "needs_complex_balancing",
    "traffic_pattern",
]


@dataclass(frozen=True)
class Flow:
    """How one datatype moves: 'horizontal', 'vertical', or 'unicast'."""

    datatype: str  # 'weights', 'iacts', 'psums'
    pattern: str

    def __post_init__(self) -> None:
        if self.pattern not in ("horizontal", "vertical", "unicast"):
            raise ValueError(f"unknown flow pattern {self.pattern!r}")


@dataclass(frozen=True)
class TrafficPattern:
    """The three flows of a (mapping, phase) pair plus feasibility."""

    mapping: str
    phase: str
    flows: tuple[Flow, ...]
    #: True when load balancing this mapping requires more than the
    #: three simple interconnects (the C,K case of Figure 10).
    needs_complex_interconnect_for_balancing: bool

    def flow_for(self, datatype: str) -> Flow:
        for flow in self.flows:
            if flow.datatype == datatype:
                return flow
        raise KeyError(datatype)


#: Which spatial dimension pair each named mapping uses.
_MAPPING_DIMS = {
    "CK": ("C", "K"),
    "CN": ("C", "N"),
    "KN": ("K", "N"),
    "PQ": ("P", "Q"),
}


def traffic_pattern(mapping: str, phase: str) -> TrafficPattern:
    """Flows for a mapping in a training phase (fw/bw/wu).

    Encodes Figure 3 (weight-stationary C,K), Figure 11 (the
    spatial-minibatch K,N / C,N family), and the activation-stationary
    P,Q mapping discussed in Section II-C.
    """
    if mapping not in _MAPPING_DIMS:
        raise ValueError(f"unknown mapping {mapping!r}")
    if phase not in ("fw", "bw", "wu"):
        raise ValueError(f"unknown phase {phase!r}")

    if mapping == "CK":
        # Figure 3: iacts multicast along rows, psums reduced along
        # columns, weights unicast.  Balancing breaks the 1-D flows.
        flows = (
            Flow("iacts", "horizontal"),
            Flow("psums", "vertical"),
            Flow("weights", "unicast"),
        )
        return TrafficPattern(mapping, phase, flows, True)
    if mapping in ("KN", "CN"):
        # Figure 11: weights multicast along the minibatch dimension,
        # iacts along the channel dimension, outputs unicast.
        flows = (
            Flow("weights", "horizontal"),
            Flow("iacts", "vertical"),
            Flow("psums", "unicast"),
        )
        return TrafficPattern(mapping, phase, flows, False)
    # PQ (activation-stationary): iacts stay put (unicast fills),
    # weights broadcast to everyone, psums local then drained.
    flows = (
        Flow("iacts", "unicast"),
        Flow("weights", "horizontal"),
        Flow("psums", "vertical"),
    )
    # Balancing is not needed in fw/bw (all PEs see all filters), but
    # the wu phase cannot be balanced on this fabric.
    return TrafficPattern(mapping, phase, flows, phase == "wu")


def needs_complex_balancing(
    mapping: str, phases: tuple[str, ...] = ("fw", "bw", "wu")
) -> bool:
    """True when balancing a mapping exceeds the simple fabric.

    The shared predicate behind every "can the Figure 14 fabric
    balance this?" decision — mapping candidate filtering
    (:func:`repro.dataflow.mapper.candidate_mappings`), the explorer's
    fabric-area constraint, and the ``design-point`` evaluator's
    interconnect pricing all call this, so they cannot drift apart.
    """
    return any(
        traffic_pattern(mapping, phase)
        .needs_complex_interconnect_for_balancing
        for phase in phases
    )
