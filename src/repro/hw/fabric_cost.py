"""Area and energy cost of on-chip interconnect alternatives.

The paper's central hardware argument is qualitative: load-balancing
the weight-stationary C,K mapping "requires more bandwidth and a more
complex interconnect" (Figure 10), while the spatial-minibatch K,N
mapping balances on the existing "three simple interconnects"
(Figure 14).  This module prices both options so the argument can be
checked quantitatively and swept with array size (Figure 20's
scalability claim rests on the simple fabric staying cheap).

The model is first-order and standard:

* **wires** — cost scales with wire length; length scales with the PE
  pitch, derived from Table III's per-PE component areas (a synthesis-
  grounded number, not a guess).  Transfer energy uses a per-bit-mm
  constant representative of 45 nm (~0.08 pJ/bit/mm).
* **1-D flow networks** — one bus per row (or column): ``n`` buses of
  length ``n * pitch`` each; drivers at each PE tap.
* **unicast network** — modelled as column buses plus per-PE address
  decoders (the Figure 14 fabric delivers unicast over a shared bus
  with per-PE select).
* **crossbar** — the complex alternative for chip-wide balancing /
  arbitrary psum collection (the Eager Pruning router and Figure 10's
  both-direction activation delivery): crosspoint area grows with
  ``sources x sinks x word bits``, and per-word energy grows with the
  traversal distance across the crossbar core.

Everything is parameterized by :class:`ArchConfig`, so the same model
prices the 16x16 and 32x32 arrays of Figure 20.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.hw.area import TABLE_III_COMPONENTS
from repro.hw.config import ArchConfig

__all__ = ["FabricCostParams", "FabricCostModel", "FabricCosts"]


def _pe_pitch_um() -> float:
    """PE tile pitch from Table III's per-PE synthesized areas."""
    per_pe_area = sum(
        c.area_um2 for c in TABLE_III_COMPONENTS if c.per_pe
    )
    return math.sqrt(per_pe_area)


@dataclass(frozen=True)
class FabricCostParams:
    """Process- and circuit-level constants of the cost model."""

    #: Energy to move one bit one millimetre (45 nm class).
    wire_pj_per_bit_mm: float = 0.08
    #: Wire area per bit of bus width per micrometre of length
    #: (metal track pitch ~0.4 um at 45 nm, one track per bit).
    wire_um2_per_bit_um: float = 0.4
    #: Area of one crossbar crosspoint, per bit (pass gate + control).
    crosspoint_um2_per_bit: float = 1.2
    #: Per-PE bus driver / receiver area (um^2), per bit.
    driver_um2_per_bit: float = 0.6
    #: Word width in bits (FP32 training datatype).
    word_bits: int = 32

    def __post_init__(self) -> None:
        if min(
            self.wire_pj_per_bit_mm,
            self.wire_um2_per_bit_um,
            self.crosspoint_um2_per_bit,
            self.driver_um2_per_bit,
        ) <= 0:
            raise ValueError("all cost constants must be positive")
        if self.word_bits < 1:
            raise ValueError("word_bits must be >= 1")


@dataclass(frozen=True)
class FabricCosts:
    """Area and per-word transfer energy of one fabric option."""

    name: str
    area_um2: float
    #: Energy to deliver one word to all its destinations, by flow.
    energy_pj_per_word: dict[str, float]

    def area_mm2(self) -> float:
        return self.area_um2 / 1e6


class FabricCostModel:
    """Prices the simple three-network fabric and its alternatives."""

    def __init__(
        self,
        arch: ArchConfig,
        params: FabricCostParams | None = None,
    ) -> None:
        self.arch = arch
        self.params = params or FabricCostParams()
        self.pitch_um = _pe_pitch_um()

    # ------------------------------------------------------------------
    # building blocks
    # ------------------------------------------------------------------
    def _bus_area(self, n_buses: int, length_um: float, taps: int) -> float:
        p = self.params
        wires = n_buses * length_um * p.wire_um2_per_bit_um * p.word_bits
        drivers = n_buses * taps * p.driver_um2_per_bit * p.word_bits
        return wires + drivers

    def _bus_energy_per_word(self, length_um: float) -> float:
        p = self.params
        return p.wire_pj_per_bit_mm * p.word_bits * (length_um / 1000.0)

    def _port_wiring_area(self, n_ports: int, avg_length_um: float) -> float:
        """Point-to-point wires from PEs to a centralized structure."""
        p = self.params
        return n_ports * avg_length_um * p.wire_um2_per_bit_um * p.word_bits

    # ------------------------------------------------------------------
    # fabric options
    # ------------------------------------------------------------------
    def simple_fabric(self) -> FabricCosts:
        """The Figure 14 fabric: H flows + V flows + shared unicast.

        A multicast on a row bus costs one full-length traversal no
        matter how many PEs listen — the reuse that makes the K,N
        dataflow cheap.
        """
        rows, cols = self.arch.pe_rows, self.arch.pe_cols
        h_len = cols * self.pitch_um
        v_len = rows * self.pitch_um
        area = (
            self._bus_area(rows, h_len, taps=cols)  # horizontal flows
            + self._bus_area(cols, v_len, taps=rows)  # vertical flows
            + self._bus_area(cols, v_len, taps=rows)  # unicast columns
        )
        return FabricCosts(
            name="simple-3net",
            area_um2=area,
            energy_pj_per_word={
                "horizontal": self._bus_energy_per_word(h_len),
                "vertical": self._bus_energy_per_word(v_len),
                "unicast": self._bus_energy_per_word(v_len + h_len / 2),
            },
        )

    def balanced_ck_fabric(self) -> FabricCosts:
        """Figure 10's requirement: activations on rows *and* columns.

        Chip-wide balancing of the C,K mapping means any activation
        may be needed by any PE: both bus directions double in width
        (or a second plane is added), PE buffers double, and a
        psum-combining network (modelled as a reduced crossbar from
        every PE to every column collector) replaces the simple
        vertical reduction.
        """
        rows, cols = self.arch.pe_rows, self.arch.pe_cols
        p = self.params
        h_len = cols * self.pitch_um
        v_len = rows * self.pitch_um
        doubled_buses = 2.0 * (
            self._bus_area(rows, h_len, taps=cols)
            + self._bus_area(cols, v_len, taps=rows)
        )
        # Psum combiner: every PE must reach every column collector —
        # crosspoints plus a dedicated wire per PE to the collectors.
        crossbar = (
            self.arch.n_pes * cols * p.crosspoint_um2_per_bit * p.word_bits
        )
        combiner_wiring = self._port_wiring_area(self.arch.n_pes, v_len / 2.0)
        area = doubled_buses + crossbar + combiner_wiring
        # A balanced delivery touches both directions on average.
        return FabricCosts(
            name="balanced-CK",
            area_um2=area,
            energy_pj_per_word={
                "horizontal": 2.0 * self._bus_energy_per_word(h_len),
                "vertical": 2.0 * self._bus_energy_per_word(v_len),
                "unicast": self._bus_energy_per_word(
                    math.hypot(h_len, v_len)
                ),
            },
        )

    def full_crossbar(self) -> FabricCosts:
        """Any-to-any crossbar — the upper bound (SCNN-style scatter).

        Crosspoint count is ``n_pes**2``, and every PE needs an input
        and an output wire to the crossbar core (average length half
        the array diagonal) — the port wiring dominates at realistic
        PE pitches.  A word traverses its port wires plus the core.
        """
        p = self.params
        n = self.arch.n_pes
        crosspoints = n * n * p.crosspoint_um2_per_bit * p.word_bits
        diag_um = math.hypot(
            self.arch.pe_rows * self.pitch_um,
            self.arch.pe_cols * self.pitch_um,
        )
        ports = self._port_wiring_area(2 * n, diag_um / 2.0)
        area = crosspoints + ports
        core_side_um = math.sqrt(crosspoints)
        energy = (
            p.wire_pj_per_bit_mm
            * p.word_bits
            * ((diag_um + core_side_um) / 1000.0)
        )
        return FabricCosts(
            name="crossbar",
            area_um2=area,
            energy_pj_per_word={
                "horizontal": energy,
                "vertical": energy,
                "unicast": energy,
            },
        )

    # ------------------------------------------------------------------
    # summaries
    # ------------------------------------------------------------------
    def options(self) -> list[FabricCosts]:
        return [
            self.simple_fabric(),
            self.balanced_ck_fabric(),
            self.full_crossbar(),
        ]

    def fabric_for_mapping(
        self, mapping: str, sparse: bool = True
    ) -> FabricCosts:
        """The cheapest fabric that can balance a mapping.

        The design-space explorer's pricing rule: mappings the simple
        3-network fabric balances (and any dense mapping, which needs
        no balancing) pay the Figure 14 cost; sparse mappings that
        need the complex interconnect (C,K — Figure 10) pay the
        balanced-CK fabric.  Used both to *screen* candidates
        (``fabric_fraction_limit``) and to *price* them (the
        ``design-point`` evaluator), so feasibility and the area
        objective always agree.
        """
        from repro.hw.interconnect import needs_complex_balancing

        if sparse and needs_complex_balancing(mapping):
            return self.balanced_ck_fabric()
        return self.simple_fabric()

    def fabric_area_fraction(self, fabric: FabricCosts) -> float:
        """Fabric area relative to the PE array it serves."""
        pe_array_area = self.arch.n_pes * self.pitch_um**2
        return fabric.area_um2 / pe_array_area
