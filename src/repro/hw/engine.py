"""Behavioural sparse-training engine: all three phases through CSB.

The analytical model (:mod:`repro.dataflow`) produces the paper's
evaluation numbers; this engine is its executable counterpart for one
layer at a time.  It holds weights **only** in the compressed-sparse-
block format and executes a full training iteration the way the
Procrustes datapath does:

* **forward** — decompress per-(k, c) kernel blocks through the
  pointer/mask arrays (never touching stored zeros) and convolve;
  cycles follow the K,N mapping's max-per-working-set rule.
* **backward** — access the *same* CSB tensor through
  :meth:`~repro.sparse.csb.CSBTensor.rotate_180` — the in-flight
  rotation Section IV-B's format exists to support — and produce
  dL/dx exactly equal to the autograd reference.
* **weight update** — compute dL/dW skipping zero input activations,
  then stream the gradients through the QE unit, which discards
  everything below the sparsity threshold before "writing back".

Every numerical result is asserted against :mod:`repro.nn.functional`
in the test suite, so this engine is the proof that the CSB format
supports all training access patterns without decompress-recompress
round trips.  Strided convolutions are handled by dilating the
back-propagated gradient (zero insertion) before the rotated-filter
convolution, exactly as the dataflow's backward pass does.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hw.config import ArchConfig
from repro.hw.qe_unit import QuantileEngine
from repro.nn import functional as F
from repro.sparse.csb import CSBTensor

__all__ = ["PhaseResult", "SparseTrainingEngine", "dilate_gradient"]


def dilate_gradient(
    dout: np.ndarray, stride: int, extra: tuple[int, int] = (0, 0)
) -> np.ndarray:
    """Insert ``stride - 1`` zeros between gradient elements.

    The backward pass of a stride-``s`` convolution is a stride-1
    convolution over the *dilated* gradient; ``extra`` appends zeros on
    the high side to recover input extents that were not multiples of
    the stride.
    """
    if stride < 1:
        raise ValueError(f"stride must be >= 1 (got {stride})")
    n, k, p, q = dout.shape
    eh, ew = extra
    if stride == 1 and not (eh or ew):
        return dout
    out = np.zeros(
        (n, k, (p - 1) * stride + 1 + eh, (q - 1) * stride + 1 + ew),
        dtype=dout.dtype,
    )
    out[:, :, ::stride, ::stride][:, :, :p, :q] = dout
    return out


@dataclass
class PhaseResult:
    """Output tensor plus the cycle cost of one phase."""

    tensor: np.ndarray
    cycles: int
    macs: int


class SparseTrainingEngine:
    """Executes one layer's training phases from CSB-resident weights."""

    def __init__(
        self,
        config: ArchConfig,
        qe: QuantileEngine | None = None,
    ) -> None:
        self.config = config
        self.qe = qe

    # ------------------------------------------------------------------
    # phase execution
    # ------------------------------------------------------------------
    def forward(
        self,
        x: np.ndarray,
        weights: CSBTensor,
        padding: int = 0,
        stride: int = 1,
        groups: int = 1,
    ) -> PhaseResult:
        """fw: ``x * W -> y`` with weight-sparse MAC skipping.

        ``groups > 1`` covers MobileNet-style depthwise/grouped
        convolution; the stored tensor shape is ``(K, C/groups, R, S)``
        exactly as the substrate expects.
        """
        dense = weights.to_dense()
        y, _ = F.conv2d(
            x, dense, stride=stride, padding=padding, groups=groups
        )
        cycles, macs = self._kn_cycles(
            weights, n=x.shape[0], uses=y.shape[2] * y.shape[3]
        )
        return PhaseResult(tensor=y, cycles=cycles, macs=macs)

    def backward(
        self,
        dout: np.ndarray,
        weights: CSBTensor,
        padding: int = 0,
        stride: int = 1,
        input_hw: tuple[int, int] | None = None,
        groups: int = 1,
    ) -> PhaseResult:
        """bw: ``dL/dy * rot180(W) -> dL/dx`` via the CSB rotation.

        The engine never materializes an alternate weight layout: the
        rotated view comes straight from the stored blocks (values
        reversed in place), and the channel roles swap — exactly the
        access pattern CSC-style formats cannot serve (Section II-D).
        For strided layers the gradient is dilated first;
        ``input_hw`` recovers input extents that were not stride
        multiples (defaults to the exact-division size).
        """
        rotated = weights.rotate_180().to_dense()
        r = rotated.shape[2]
        if stride > 1:
            p, q = dout.shape[2], dout.shape[3]
            if input_hw is None:
                h = (p - 1) * stride + r - 2 * padding
                w = (q - 1) * stride + r - 2 * padding
            else:
                h, w = input_hw
            extra = (
                (h + 2 * padding - r) - (p - 1) * stride,
                (w + 2 * padding - r) - (q - 1) * stride,
            )
            dout = dilate_gradient(dout, stride, extra=extra)
        # dL/dx = "full" convolution of dL/dy with the rotated filters,
        # channel-transposed: out-channels of this conv are the layer's
        # input channels.  With groups, the swap happens within each
        # group: the grouped conv's weight is (C, K/groups, R, S).
        if groups == 1:
            swapped = rotated.transpose(1, 0, 2, 3)
        else:
            k, cg, rr, ss = rotated.shape
            kg = k // groups
            swapped = (
                rotated.reshape(groups, kg, cg, rr, ss)
                .transpose(0, 2, 1, 3, 4)
                .reshape(groups * cg, kg, rr, ss)
            )
        dx, _ = F.conv2d(
            dout, swapped, padding=r - 1 - padding, groups=groups
        )
        cycles, macs = self._kn_cycles(
            weights,
            n=dout.shape[0],
            uses=dx.shape[2] * dx.shape[3],
            along="in",
        )
        return PhaseResult(tensor=dx, cycles=cycles, macs=macs)

    def weight_update(
        self,
        x: np.ndarray,
        dout: np.ndarray,
        weights: CSBTensor,
        padding: int = 0,
        stride: int = 1,
        groups: int = 1,
    ) -> tuple[PhaseResult, np.ndarray, CSBTensor]:
        """wu: ``x * dL/dy -> dL/dW``, QE-filtered on the way out.

        Returns the raw-gradient phase result, the QE keep-mask, and
        the *compressed* surviving gradient tensor as it would be
        written back to DRAM.
        """
        r, s = weights.grid.block_shape
        dweight = F.conv2d_weight_grad(
            x, dout, (r, s), stride=stride, padding=padding, groups=groups
        )
        cycles, macs = self._wu_cycles(x, dout, taps=r * s)
        if self.qe is not None:
            keep = self.qe.filter(dweight.ravel()).reshape(dweight.shape)
        else:
            keep = np.ones_like(dweight, dtype=bool)
        surviving = CSBTensor.from_dense(np.where(keep, dweight, 0.0))
        return (
            PhaseResult(tensor=dweight, cycles=cycles, macs=macs),
            keep,
            surviving,
        )

    def train_step(
        self,
        x: np.ndarray,
        dout: np.ndarray,
        weights: CSBTensor,
        padding: int = 0,
    ) -> dict[str, PhaseResult]:
        """All three phases of one layer's iteration (Figure 2)."""
        fw = self.forward(x, weights, padding=padding)
        bw = self.backward(dout, weights, padding=padding)
        wu, _, _ = self.weight_update(x, dout, weights, padding=padding)
        return {"fw": fw, "bw": bw, "wu": wu}

    # ------------------------------------------------------------------
    # cycle accounting (same rules as the analytical model)
    # ------------------------------------------------------------------
    def _kn_cycles(
        self,
        weights: CSBTensor,
        n: int,
        uses: int,
        along: str = "out",
    ) -> tuple[int, int]:
        """K,N-mapping cycles: sum over working sets of the slowest PE.

        Per-channel non-zero counts come from CSB pointer differences
        (the hardware's tile-sizing trick); ``along`` picks the spatial
        channel dimension — output channels in fw, input channels in
        the backward pass (the rotated tensor's "K").
        """
        axis = 0 if along == "out" else 1
        per_channel = weights.block_nnz().reshape(
            weights.grid.grid_shape
        ).sum(axis=1 - axis)
        rows, cols = self.config.pe_rows, self.config.pe_cols
        n_tiles = -(-n // cols)
        cycles = 0
        for start in range(0, per_channel.shape[0], rows):
            tile = per_channel[start : start + rows]
            cycles += int(tile.max()) * uses * n_tiles
        macs = int(per_channel.sum()) * uses * n
        return cycles, macs

    def _wu_cycles(
        self, x: np.ndarray, dout: np.ndarray, taps: int
    ) -> tuple[int, int]:
        """wu cycles: per-sample work follows input-activation nnz."""
        n = x.shape[0]
        k = dout.shape[1]
        scale = dout.shape[2] * dout.shape[3] / (x.shape[2] * x.shape[3])
        per_sample = np.count_nonzero(
            x.reshape(n, -1), axis=1
        ) * taps * max(scale, 1e-12)
        rows, cols = self.config.pe_rows, self.config.pe_cols
        k_tiles = -(-k // rows)
        cycles = 0
        for start in range(0, n, cols):
            tile = per_sample[start : start + cols]
            cycles += int(round(tile.max())) * k_tiles
        macs = int(round(per_sample.sum())) * k
        return cycles, macs
