"""On-chip capacity checks for the CSB metadata.

Section IV-B notes that "in all of our simulations, mask arrays fit in
the on-chip GLB".  The masks resident at any instant are those of the
*active working set* (the weight tiles currently held by the PE
array), not the whole model, so the check is per working set: the
bits of mask for one array-pass of weight tiles must fit in the GLB
share reserved for metadata, alongside the per-PE mask memories listed
in Table III.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.config import ArchConfig
from repro.workloads.phases import phase_op
from repro.workloads.sparsity import NetworkSparsity

__all__ = ["MaskResidency", "check_mask_residency", "mask_residency_ok"]

#: Fraction of the GLB budgeted to CSB metadata (masks + pointers).
GLB_METADATA_FRACTION = 0.25


@dataclass(frozen=True)
class MaskResidency:
    """Mask-storage requirement of one layer's working sets."""

    layer_name: str
    working_set_mask_bits: int
    layer_mask_bits: int
    fits_working_set: bool
    fits_whole_layer: bool


def mask_residency_ok(
    profile: NetworkSparsity,
    arch: ArchConfig,
    n: int = 64,
    phase: str = "fw",
) -> bool:
    """True when every layer's working-set masks fit the GLB budget.

    The scalar form of :func:`check_mask_residency`, used as a
    feasibility predicate by the design-space explorer: a candidate
    (arch, network) pair whose active masks overflow the metadata
    share of the GLB is pruned before simulation.
    """
    return all(
        r.fits_working_set
        for r in check_mask_residency(profile, arch, n=n, phase=phase)
    )


def check_mask_residency(
    profile: NetworkSparsity,
    arch: ArchConfig,
    n: int = 64,
    phase: str = "fw",
) -> list[MaskResidency]:
    """Validate GLB mask residency for every layer of a network.

    A working set holds one weight tile per PE row group: for the K,N
    mapping that is ``pe_rows`` output channels' worth of kernels, so
    its mask costs ``pe_rows * weights_per_out_channel`` bits (one bit
    per dense weight position, Figure 8).
    """
    budget_bits = int(arch.glb_bytes * 8 * GLB_METADATA_FRACTION)
    results = []
    for ls in profile.layers:
        op = phase_op(ls.layer, phase, n)
        per_channel_bits = ls.layer.weights_per_out_channel
        working = min(arch.pe_rows, op.out_channels) * per_channel_bits
        whole = ls.layer.weight_count
        results.append(
            MaskResidency(
                layer_name=ls.layer.name,
                working_set_mask_bits=working,
                layer_mask_bits=whole,
                fits_working_set=working <= budget_bits,
                fits_whole_layer=whole <= budget_bits,
            )
        )
    return results
