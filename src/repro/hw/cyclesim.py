"""Cycle-level simulation of the PE array and its three interconnects.

The paper's headline numbers come from an analytical model (our
:mod:`repro.dataflow`), which assumes that per-working-set latency is
the maximum per-PE MAC count — i.e. that the simple fabric of
Figure 14 keeps every PE fed.  This module checks that assumption from
below: it walks a conv layer working set by working set, modelling

* the **horizontal** and **vertical** one-dimensional flows (one bus
  per row / per column, finite words per cycle),
* the **unicast** network (shared injection bandwidth),
* per-PE register-file capacity (weights resident per PE must fit,
  forcing input-channel chunking of large layers), and
* **double buffering** (the next set's fill overlaps the current
  set's compute; drains overlap the following set).

Two mappings are simulated, matching the paper's central comparison:

* ``KN`` (Figure 11): weights multicast along rows, iacts multicast
  down columns, psums unicast out.  Half-tile balancing (Figure 12)
  swaps work along K without changing the traffic pattern.
* ``CK`` (Figure 3): weights unicast to every PE, iacts multicast
  along rows, psums reduced down columns.  Chip-wide balancing
  (Figure 10) equalizes work but duplicates activation traffic onto
  both bus directions.

The key validation, exercised in the test suite: with generous fabric
bandwidth the simulated cycles equal the analytical model's
max-over-PEs accounting; with realistic single-word buses, fills stay
hidden behind compute for the multicast KN dataflow but surface as
stalls for unicast-heavy CK — which is the paper's interconnect
argument made cycle-accurate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hw.config import ArchConfig

__all__ = [
    "FabricConfig",
    "SetTrace",
    "CycleSimResult",
    "CycleLevelSimulator",
    "IDEAL_FABRIC",
    "SINGLE_WORD_FABRIC",
    "compose_pipeline_batch",
]


@dataclass(frozen=True)
class FabricConfig:
    """Interconnect bandwidths, in datatype words per cycle.

    ``h_words`` / ``v_words`` are per-bus (each row / column has its
    own one-dimensional flow); ``unicast_words`` is the aggregate
    injection bandwidth of the any-to-any network.  ``double_buffered``
    enables fill/compute overlap at the cost of halving the weight
    space available in each register file.
    """

    h_words: float = 1.0
    v_words: float = 1.0
    unicast_words: float = 16.0
    double_buffered: bool = True

    def __post_init__(self) -> None:
        if min(self.h_words, self.v_words, self.unicast_words) <= 0:
            raise ValueError("bus bandwidths must be positive")


#: Effectively infinite fabric — isolates the compute-bound behaviour
#: the analytical model predicts.
IDEAL_FABRIC = FabricConfig(
    h_words=1e9, v_words=1e9, unicast_words=1e9, double_buffered=True
)

#: One word per bus per cycle, 16-word unicast: the realistic fabric.
SINGLE_WORD_FABRIC = FabricConfig()


@dataclass
class SetTrace:
    """Fill/compute/drain cycle breakdown of one working set."""

    index: int
    fill_cycles: float
    compute_cycles: float
    drain_cycles: float
    macs: int
    active_pes: int

    @property
    def bound(self) -> str:
        """Which pipeline stage limits this set."""
        worst = max(self.fill_cycles, self.compute_cycles, self.drain_cycles)
        if worst == self.compute_cycles:
            return "compute"
        if worst == self.fill_cycles:
            return "fill"
        return "drain"


@dataclass
class CycleSimResult:
    """Totals of one simulated layer phase."""

    mapping: str
    balanced: bool
    cycles: float = 0.0
    compute_cycles: float = 0.0
    stall_cycles: float = 0.0
    macs: int = 0
    n_pes: int = 256
    bus_words: dict[str, float] = field(default_factory=dict)
    traces: list[SetTrace] = field(default_factory=list)

    @property
    def utilization(self) -> float:
        """Issued MACs over peak MAC slots."""
        if self.cycles <= 0:
            return 0.0
        return self.macs / (self.cycles * self.n_pes)

    @property
    def stall_fraction(self) -> float:
        return self.stall_cycles / self.cycles if self.cycles else 0.0

    def bound_histogram(self) -> dict[str, int]:
        """How many working sets are limited by each pipeline stage."""
        hist = {"compute": 0, "fill": 0, "drain": 0}
        for t in self.traces:
            hist[t.bound] += 1
        return hist

    def fabric_energy_pj(self, costs) -> float:
        """On-chip transfer energy of this run, priced by a fabric.

        ``costs`` is a :class:`~repro.hw.fabric_cost.FabricCosts`;
        every word counted on a bus pays that flow's per-word transfer
        energy, tying the cycle simulation to the wire-level model.
        """
        return sum(
            words * costs.energy_pj_per_word[flow]
            for flow, words in self.bus_words.items()
        )


def _chunk_channels(kernel_nnz: np.ndarray, budget_words: int) -> list[np.ndarray]:
    """Split input channels so per-PE resident weights fit the RF.

    ``kernel_nnz`` is ``(K, C)`` non-zeros per kernel.  Channels are
    accumulated greedily until the worst output channel's resident
    word count would exceed ``budget_words``.  Every chunk holds at
    least one channel — a kernel that alone exceeds the budget is
    allowed through (the RF streams it), matching how the analytical
    model degrades.
    """
    if budget_words < 1:
        raise ValueError(f"RF weight budget must be >= 1 word (got {budget_words})")
    chunks: list[list[int]] = []
    current: list[int] = []
    resident = np.zeros(kernel_nnz.shape[0], dtype=np.int64)
    for c in range(kernel_nnz.shape[1]):
        col = kernel_nnz[:, c]
        if current and (resident + col).max() > budget_words:
            chunks.append(current)
            current = []
            resident = np.zeros_like(resident)
        current.append(c)
        resident = resident + col
    if current:
        chunks.append(current)
    return [np.asarray(chunk, dtype=np.int64) for chunk in chunks]


def _pair_halves_exact(first: np.ndarray, second: np.ndarray) -> np.ndarray:
    """Sparsest-with-densest pairing of actual half-tile works.

    Unlike :func:`repro.dataflow.loadbalance.pair_halves` (which draws
    intra-tile splits from a Beta model), the cycle simulator has the
    true per-half non-zero counts, so the pairing is exact.
    """
    halves = np.concatenate([first, second])
    order = np.sort(halves)
    return order[: len(first)] + order[::-1][: len(first)]


class CycleLevelSimulator:
    """Working-set-granular cycle simulation of one conv layer phase.

    Parameters
    ----------
    arch:
        PE-array geometry and register-file capacity.
    fabric:
        Interconnect bandwidths and buffering mode.
    rf_weight_share:
        Fraction of each register file reserved for weights (the rest
        buffers activations and partial sums).  Halved again when
        double buffering.
    """

    def __init__(
        self,
        arch: ArchConfig,
        fabric: FabricConfig = SINGLE_WORD_FABRIC,
        rf_weight_share: float = 0.5,
    ) -> None:
        if not 0.0 < rf_weight_share <= 1.0:
            raise ValueError(
                f"rf_weight_share must be in (0, 1] (got {rf_weight_share})"
            )
        self.arch = arch
        self.fabric = fabric
        self.rf_weight_share = rf_weight_share

    @property
    def weight_budget_words(self) -> int:
        """Weight words a PE can hold resident per working set."""
        words = int(self.arch.rf_words * self.rf_weight_share)
        if self.fabric.double_buffered:
            words //= 2
        return max(1, words)

    # ------------------------------------------------------------------
    # public entry points
    # ------------------------------------------------------------------
    def run_conv(
        self,
        mask: np.ndarray,
        p: int,
        q: int,
        n: int,
        mapping: str = "KN",
        balance: bool = False,
        stride: int = 1,
    ) -> CycleSimResult:
        """Simulate one layer forward pass from its weight mask.

        ``mask`` is the ``(K, C, R, S)`` boolean non-zero map; ``p, q``
        the output activation dimensions; ``n`` the minibatch.
        """
        if mask.ndim != 4:
            raise ValueError(f"mask must be (K, C, R, S), got {mask.ndim}-D")
        if min(p, q, n) < 1:
            raise ValueError("p, q, n must all be >= 1")
        if mapping == "KN":
            return self._run_kn(mask.astype(bool), p, q, n, balance, stride)
        if mapping == "CK":
            return self._run_ck(mask.astype(bool), p, q, n, balance, stride)
        raise ValueError(
            f"cycle simulator supports KN and CK mappings (got {mapping!r})"
        )

    def run_conv_candidates(
        self,
        mask: np.ndarray,
        p: int,
        q: int,
        n: int,
        candidates: list[tuple[str, bool]],
        stride: int = 1,
    ) -> list[CycleSimResult]:
        """Simulate several (mapping, balance) candidates of one layer.

        All candidates share the layer's mask, so the ``(K, C)``
        non-zero reduction — the dominant cost for real masks — is
        computed once and reused; each candidate's working-set walk and
        pipeline composition then runs from the shared counts.  Every
        result is bit-identical to the corresponding
        :meth:`run_conv` call.
        """
        if mask.ndim != 4:
            raise ValueError(f"mask must be (K, C, R, S), got {mask.ndim}-D")
        if min(p, q, n) < 1:
            raise ValueError("p, q, n must all be >= 1")
        mask = mask.astype(bool)
        k, c, r, s = mask.shape
        kernel_nnz = mask.reshape(k, c, r * s).sum(axis=2)
        results = []
        for mapping, balance in candidates:
            if mapping == "KN":
                results.append(
                    self._run_kn(
                        mask, p, q, n, balance, stride,
                        kernel_nnz=kernel_nnz,
                    )
                )
            elif mapping == "CK":
                results.append(
                    self._run_ck(
                        mask, p, q, n, balance, stride,
                        kernel_nnz=kernel_nnz,
                    )
                )
            else:
                raise ValueError(
                    f"cycle simulator supports KN and CK mappings "
                    f"(got {mapping!r})"
                )
        return results

    # ------------------------------------------------------------------
    # KN: spatial-minibatch mapping (Figure 11 / 12)
    # ------------------------------------------------------------------
    def _run_kn(
        self,
        mask: np.ndarray,
        p: int,
        q: int,
        n: int,
        balance: bool,
        stride: int,
        kernel_nnz: np.ndarray | None = None,
    ) -> CycleSimResult:
        k, c, r, s = mask.shape
        rows, cols = self.arch.pe_rows, self.arch.pe_cols
        if kernel_nnz is None:
            kernel_nnz = mask.reshape(k, c, r * s).sum(axis=2)  # (K, C)
        chunks = _chunk_channels(kernel_nnz, self.weight_budget_words)
        # Input window delivered per column per set (one sample's
        # chunk-channels slab).
        h_in = (p - 1) * stride + r
        w_in = (q - 1) * stride + s

        result = CycleSimResult(
            mapping="KN", balanced=balance, n_pes=self.arch.n_pes
        )
        result.bus_words = {"horizontal": 0.0, "vertical": 0.0, "unicast": 0.0}
        fills: list[np.ndarray] = []
        computes: list[np.ndarray] = []
        drains: list[np.ndarray] = []

        # Minibatch tiles share everything but the edge tile's column
        # count, so per (k-tile, chunk) the whole tile row of working
        # sets is accounted in one batch.
        n_tiles = -(-n // cols)
        col_active = np.full(n_tiles, cols, dtype=np.int64)
        if n % cols:
            col_active[-1] = n % cols

        index = 0
        for k0 in range(0, k, rows):
            k_hi = min(k0 + rows, k)
            for ci, chunk in enumerate(chunks):
                last_chunk = ci == len(chunks) - 1
                # Per-row resident weight words for this (k-tile, chunk).
                per_row = kernel_nnz[k0:k_hi][:, chunk].sum(axis=1)
                if balance and len(per_row) > 1:
                    half = len(chunk) // 2
                    if half:
                        first = kernel_nnz[k0:k_hi][:, chunk[:half]].sum(axis=1)
                        second = kernel_nnz[k0:k_hi][:, chunk[half:]].sum(axis=1)
                        per_row = _pair_halves_exact(first, second)
                iact_words = len(chunk) * h_in * w_in
                # Weights multicast: each row bus carries its tile
                # once, buses run in parallel.  iacts multicast down
                # columns, one sample each.
                w_fill = float(per_row.max()) / self.fabric.h_words
                x_fill = iact_words / self.fabric.v_words
                fill = max(w_fill, x_fill)
                compute = float(per_row.max()) * p * q
                macs_tile = int(per_row.sum()) * p * q * col_active
                # Psums leave via unicast on the last chunk only
                # (output-stationary across chunks).
                if last_chunk:
                    drain_words = len(per_row) * col_active * p * q
                else:
                    drain_words = np.zeros(n_tiles, dtype=np.int64)
                drain = drain_words / self.fabric.unicast_words
                result.bus_words["horizontal"] += float(per_row.sum()) * n_tiles
                result.bus_words["vertical"] += float(
                    iact_words * col_active.sum()
                )
                result.bus_words["unicast"] += float(drain_words.sum())
                fills.append(np.full(n_tiles, fill))
                computes.append(np.full(n_tiles, compute))
                drains.append(drain)
                result.macs += int(macs_tile.sum())
                for t in range(n_tiles):
                    result.traces.append(
                        SetTrace(
                            index=index,
                            fill_cycles=fill,
                            compute_cycles=compute,
                            drain_cycles=float(drain[t]),
                            macs=int(macs_tile[t]),
                            active_pes=len(per_row) * int(col_active[t]),
                        )
                    )
                    index += 1
        self._accumulate(
            result,
            np.concatenate(fills) if fills else np.zeros(0),
            np.concatenate(computes) if computes else np.zeros(0),
            np.concatenate(drains) if drains else np.zeros(0),
        )
        return result

    # ------------------------------------------------------------------
    # CK: weight-stationary mapping (Figure 3 / 10)
    # ------------------------------------------------------------------
    def _run_ck(
        self,
        mask: np.ndarray,
        p: int,
        q: int,
        n: int,
        balance: bool,
        stride: int,
        kernel_nnz: np.ndarray | None = None,
    ) -> CycleSimResult:
        k, c, r, s = mask.shape
        rows, cols = self.arch.pe_rows, self.arch.pe_cols
        if kernel_nnz is None:
            kernel_nnz = mask.reshape(k, c, r * s).sum(axis=2)  # (K, C)
        h_in = (p - 1) * stride + r
        w_in = (q - 1) * stride + s
        iact_words_per_row = h_in * w_in  # one channel's slab

        result = CycleSimResult(
            mapping="CK", balanced=balance, n_pes=self.arch.n_pes
        )
        result.bus_words = {"horizontal": 0.0, "vertical": 0.0, "unicast": 0.0}
        fills: list[np.ndarray] = []
        computes: list[np.ndarray] = []
        drains: list[np.ndarray] = []

        index = 0
        for c0 in range(0, c, rows):
            c_hi = min(c0 + rows, c)
            for k0 in range(0, k, cols):
                k_hi = min(k0 + cols, k)
                tile = kernel_nnz[k0:k_hi, c0:c_hi].T  # (rows=C, cols=K)
                total_w = int(tile.sum())
                # Weights are stationary across the minibatch: unicast
                # them once per (c-tile, k-tile).
                w_fill = total_w / self.fabric.unicast_words
                result.bus_words["unicast"] += total_w
                if balance:
                    # Chip-wide perfect balancing (Figure 10): equal
                    # MACs per PE, but iacts must reach both rows and
                    # columns — their words double.
                    per_pe_macs = total_w * p * q / (rows * cols)
                    iact_factor = 2.0
                else:
                    per_pe_macs = float(tile.max()) * p * q
                    iact_factor = 1.0
                n_rows_active = c_hi - c0
                n_cols_active = k_hi - k0
                iact_words = iact_words_per_row * iact_factor
                # Every sample of this (c-tile, k-tile) behaves the
                # same except that the first also waits on the weight
                # fill — batch the whole minibatch in one shot.
                x_fill = iact_words / self.fabric.h_words
                tile_fills = np.full(n, x_fill)
                tile_fills[0] = max(x_fill, w_fill)
                macs = total_w * p * q
                # Psums reduce down columns every sample; the vertical
                # flow carries one reduced stream of p*q words per
                # column (pipelined, plus array drain latency).
                drain = p * q / self.fabric.v_words + n_rows_active
                result.bus_words["horizontal"] += (
                    iact_words * n_rows_active * n
                )
                result.bus_words["vertical"] += p * q * n_cols_active * n
                fills.append(tile_fills)
                computes.append(np.full(n, per_pe_macs))
                drains.append(np.full(n, drain))
                result.macs += macs * n
                for sample in range(n):
                    result.traces.append(
                        SetTrace(
                            index=index,
                            fill_cycles=float(tile_fills[sample]),
                            compute_cycles=per_pe_macs,
                            drain_cycles=drain,
                            macs=macs,
                            active_pes=n_rows_active * n_cols_active,
                        )
                    )
                    index += 1
        self._accumulate(
            result,
            np.concatenate(fills) if fills else np.zeros(0),
            np.concatenate(computes) if computes else np.zeros(0),
            np.concatenate(drains) if drains else np.zeros(0),
        )
        return result

    # ------------------------------------------------------------------
    # pipeline composition
    # ------------------------------------------------------------------
    def _accumulate(
        self,
        result: CycleSimResult,
        fills: np.ndarray,
        computes: np.ndarray,
        drains: np.ndarray,
    ) -> None:
        """Compose per-set stage times into total cycles.

        Double-buffered: set ``i``'s compute overlaps set ``i+1``'s
        fill and set ``i-1``'s drain (each stage uses distinct
        networks), so the steady-state cost per set is the max of the
        three — evaluated in one vectorized pass over shifted copies
        of the stage arrays.  Without double buffering the stages
        serialize.  :func:`_reference_accumulate` keeps the per-set
        loop as ground truth.
        """
        fills = np.asarray(fills, dtype=float)
        computes = np.asarray(computes, dtype=float)
        drains = np.asarray(drains, dtype=float)
        if fills.size == 0:
            return
        totals, compute_totals = compose_pipeline_batch(
            self.fabric.double_buffered,
            fills[None, :],
            computes[None, :],
            drains[None, :],
        )
        total = float(totals[0])
        result.cycles = total
        result.compute_cycles = float(compute_totals[0])
        result.stall_cycles = total - result.compute_cycles


def compose_pipeline_batch(
    double_buffered: bool,
    fills: np.ndarray,
    computes: np.ndarray,
    drains: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Pipeline composition with a leading candidate axis.

    ``fills``/``computes``/``drains`` are ``(B, n_sets)`` stage-time
    stacks — one candidate's working-set sequence per row; rows must
    share a set count (pad shorter candidates with zero-cost sets,
    which compose as no-ops).  Returns ``(total, compute)`` cycle
    vectors of length ``B``.  Each row reduces exactly as
    :meth:`CycleLevelSimulator._accumulate` composes a single
    candidate — the shifted-max runs elementwise and the sums reduce
    the trailing axis per row — so the result is bit-identical to ``B``
    single-candidate compositions (and to
    :func:`_reference_accumulate`).
    """
    fills = np.atleast_2d(np.asarray(fills, dtype=float))
    computes = np.atleast_2d(np.asarray(computes, dtype=float))
    drains = np.atleast_2d(np.asarray(drains, dtype=float))
    if not fills.shape == computes.shape == drains.shape:
        raise ValueError(
            f"stage stacks must share one (B, n_sets) shape, got "
            f"{fills.shape}/{computes.shape}/{drains.shape}"
        )
    compute_totals = computes.sum(axis=-1)
    if fills.shape[-1] == 0:
        return np.zeros(fills.shape[0]), compute_totals
    if double_buffered:
        pad = np.zeros((fills.shape[0], 1))
        next_fill = np.concatenate([fills[:, 1:], pad], axis=1)
        prev_drain = np.concatenate([pad, drains[:, :-1]], axis=1)
        steady = np.maximum(np.maximum(computes, next_fill), prev_drain)
        totals = fills[:, 0] + steady.sum(axis=1) + drains[:, -1]
    else:
        totals = fills.sum(axis=1) + compute_totals + drains.sum(axis=1)
    return totals, compute_totals


def _reference_accumulate(
    double_buffered: bool,
    fills: list[float],
    computes: list[float],
    drains: list[float],
) -> tuple[float, float]:
    """Loop reference for pipeline composition: (total, compute) cycles.

    The original per-set recurrence, kept for the parity suite; the
    vectorized :meth:`CycleLevelSimulator._accumulate` must agree with
    it to floating-point round-off.
    """
    compute_total = float(np.sum(computes))
    if not fills:
        return 0.0, compute_total
    if double_buffered:
        total = fills[0]
        for i, compute in enumerate(computes):
            next_fill = fills[i + 1] if i + 1 < len(fills) else 0.0
            prev_drain = drains[i - 1] if i > 0 else 0.0
            total += max(compute, next_fill, prev_drain)
        total += drains[-1]
    else:
        total = float(np.sum(fills) + compute_total + np.sum(drains))
    return float(total), compute_total
