"""The global quantile-engine (QE) hardware unit.

Sits between the global buffer and DRAM (Figure 14): it watches the
accumulated gradients flowing out during the weight-update phase,
maintains the streaming quantile estimate (Algorithm 4, parallelized
four-wide), and discards every gradient whose magnitude falls below
the current threshold — those weights revert to pruned status and are
never written back, which is what keeps the weight storage compressed.

This model wraps :class:`repro.core.quantile.ParallelQuantileEstimator`
with the filtering datapath and cycle/energy accounting the
architecture model charges for it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.quantile import ParallelQuantileEstimator, quantile_for_sparsity

__all__ = ["QEUnitStats", "QuantileEngine"]


@dataclass
class QEUnitStats:
    """Cumulative activity counters for the QE unit."""

    observed: int = 0
    retained: int = 0
    discarded: int = 0
    cycles: int = 0

    @property
    def retain_fraction(self) -> float:
        return self.retained / self.observed if self.observed else 0.0


class QuantileEngine:
    """Filter a gradient stream against the running quantile estimate."""

    def __init__(
        self,
        sparsity_factor: float,
        updates_per_cycle: int = 4,
        rho: float = 1e-3,
        initial: float = 1e-6,
    ) -> None:
        if updates_per_cycle < 1:
            raise ValueError(
                f"updates_per_cycle must be >= 1 (got {updates_per_cycle})"
            )
        self.sparsity_factor = float(sparsity_factor)
        self.updates_per_cycle = int(updates_per_cycle)
        self._estimator = ParallelQuantileEstimator(
            quantile_for_sparsity(sparsity_factor),
            width=updates_per_cycle,
            rho=rho,
            initial=initial,
        )
        self.stats = QEUnitStats()

    @property
    def threshold(self) -> float:
        return self._estimator.estimate

    def filter(self, gradients: np.ndarray) -> np.ndarray:
        """Pass one burst of accumulated gradients through the unit.

        Returns the boolean keep-mask (True = written back to DRAM).
        The comparison uses the threshold as of the burst start — the
        estimate update happens behind the comparator, as in hardware.
        """
        gradients = np.asarray(gradients, dtype=np.float64).ravel()
        magnitudes = np.abs(gradients)
        keep = magnitudes > self.threshold
        self._estimator.update_many(magnitudes)
        self.stats.observed += gradients.size
        kept = int(np.count_nonzero(keep))
        self.stats.retained += kept
        self.stats.discarded += gradients.size - kept
        self.stats.cycles = self._estimator.cycles
        return keep

    def keeps_up_with(self, gradients_per_cycle: float) -> bool:
        """Whether the unit can absorb the datapath's peak rate.

        The paper extends DUMIQUE to four updates per cycle precisely
        because the last VGG-S conv layer produces up to four gradients
        per cycle.
        """
        return gradients_per_cycle <= self.updates_per_cycle
