"""Per-access energy model (the Accelergy substitution).

The paper uses Accelergy's default 40 nm component library for access
energies and reports *relative* results (dense vs. sparse, dataflow vs.
dataflow).  We embed a table with the same ordering and roughly the
same ratios as published 45 nm numbers: an FP32 MAC costs a few pJ, a
1 KB register file access is cheapest, the 128 KB global buffer is an
order of magnitude above the RF, and DRAM is two orders above that.

Absolute joules will not match the authors' testbed; the shapes —
MAC-dominated training energy, DRAM mattering most for MobileNet-style
low-reuse layers — are preserved.  GLB energy scales with the square
root of capacity (wordline/bitline growth), which is what makes the
doubled GLB of the 32x32 configuration slightly costlier per access.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["EnergyTable", "DEFAULT_ENERGY_TABLE", "EnergyBreakdown"]


@dataclass(frozen=True)
class EnergyTable:
    """Per-event energies in picojoules.

    ``glb_reference_bytes`` anchors the sqrt capacity scaling: a table
    queried for a GLB of a different size scales its per-access cost.
    """

    mac_fp32_pj: float = 16.0
    rf_word_pj: float = 1.6
    glb_word_pj: float = 16.0
    dram_word_pj: float = 320.0
    glb_reference_bytes: int = 128 * 1024
    #: Procrustes-specific units, per event (from the synthesized RTL's
    #: tiny power numbers; negligible next to MACs by design).
    wr_regen_pj: float = 0.12
    qe_update_pj: float = 0.05

    def glb_word_pj_at(self, glb_bytes: int) -> float:
        """GLB per-word access cost at a given capacity."""
        if glb_bytes <= 0:
            raise ValueError(f"glb_bytes must be positive (got {glb_bytes})")
        return self.glb_word_pj * math.sqrt(
            glb_bytes / self.glb_reference_bytes
        )


#: The table used by every experiment unless overridden.
DEFAULT_ENERGY_TABLE = EnergyTable()


@dataclass
class EnergyBreakdown:
    """Joules per memory level plus compute, as plotted in Figs 1/17/20."""

    dram_j: float = 0.0
    glb_j: float = 0.0
    rf_j: float = 0.0
    mac_j: float = 0.0
    overhead_j: float = 0.0  # WR + QE + load balancer events

    @property
    def total_j(self) -> float:
        return self.dram_j + self.glb_j + self.rf_j + self.mac_j + self.overhead_j

    def __add__(self, other: "EnergyBreakdown") -> "EnergyBreakdown":
        return EnergyBreakdown(
            dram_j=self.dram_j + other.dram_j,
            glb_j=self.glb_j + other.glb_j,
            rf_j=self.rf_j + other.rf_j,
            mac_j=self.mac_j + other.mac_j,
            overhead_j=self.overhead_j + other.overhead_j,
        )

    def scaled(self, factor: float) -> "EnergyBreakdown":
        return EnergyBreakdown(
            dram_j=self.dram_j * factor,
            glb_j=self.glb_j * factor,
            rf_j=self.rf_j * factor,
            mac_j=self.mac_j * factor,
            overhead_j=self.overhead_j * factor,
        )

    def as_dict(self) -> dict[str, float]:
        return {
            "DRAM": self.dram_j,
            "GLB": self.glb_j,
            "RF": self.rf_j,
            "MAC": self.mac_j,
            "overhead": self.overhead_j,
        }
