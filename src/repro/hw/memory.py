"""Training-time memory footprint model.

Quantifies the introduction's storage claims across sparse-training
methods (see :mod:`repro.core.schedules` for the density trajectories):

* **weight footprint over training** — gradual pruning methods carry
  the full dense parameter set for most of the run (and accumulate
  optimizer state for it), so their *peak* footprint equals dense
  training's; sparse-from-scratch methods peak at the target density;
* **format-switch overhead** — methods that start dense must store
  weights densely until compression pays, then re-encode the whole
  tensor mid-training;
* **activation footprint per iteration** — every layer's iacts are
  held from the forward pass until its weight update; Procrustes
  stores the long-term copy compressed (Section IV-A / Gist [21]).

All byte counts are analytic (density-parameterized), so whole
networks sweep over millions of iterations instantly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.schedules import SparsitySchedule
from repro.sparse.activations import storage_bits_at_density
from repro.workloads.layer_spec import LayerSpec

__all__ = [
    "WeightFootprint",
    "ActivationFootprint",
    "TrainingFootprint",
    "WeightTraffic",
    "weight_bits_dense",
    "weight_bits_csb",
    "weight_traffic",
]


def weight_bits_dense(weight_count: int, value_bits: int = 32) -> int:
    """Bits to store a dense weight tensor."""
    if weight_count < 0:
        raise ValueError("weight_count must be >= 0")
    return weight_count * value_bits


def weight_bits_csb(
    weight_count: int,
    density: float,
    value_bits: int = 32,
    pointer_bits: int = 32,
    block_size: int = 9,
) -> int:
    """Bits for CSB storage at a given density (Figure 8 components).

    ``block_size`` is the dense region per block — 9 for the 3x3
    kernels that dominate the paper's networks.
    """
    if not 0.0 <= density <= 1.0:
        raise ValueError(f"density must lie in [0, 1] (got {density})")
    if weight_count < 0:
        raise ValueError("weight_count must be >= 0")
    values = int(round(weight_count * density)) * value_bits
    masks = weight_count  # one bit per dense position
    n_blocks = weight_count // max(1, block_size)
    pointers = (n_blocks + 1) * pointer_bits
    return values + masks + pointers


@dataclass
class WeightFootprint:
    """Weight-storage trajectory of one method on one network."""

    method: str
    iterations: np.ndarray  # sample points
    bits: np.ndarray  # best-format storage at each sample point
    dense_bits: int
    switch_iteration: int | None  # None = never switches format

    @property
    def peak_bits(self) -> int:
        return int(self.bits.max())

    @property
    def peak_reduction(self) -> float:
        """Dense-peak over this method's peak (>1 = saves memory)."""
        return self.dense_bits / self.peak_bits if self.peak_bits else float("inf")

    @property
    def average_bits(self) -> float:
        return float(self.bits.mean())


def weight_footprint(
    schedule: SparsitySchedule,
    weight_count: int,
    total_iterations: int,
    samples: int = 512,
    value_bits: int = 32,
) -> WeightFootprint:
    """Sample a schedule's weight storage over a training run.

    At each sampled iteration the cheaper of dense and CSB storage is
    charged — modelling a system that switches formats when it pays
    (the intro's claim (iii) overhead is the switch itself, reported
    via ``switch_iteration``).
    """
    if total_iterations < 1:
        raise ValueError("total_iterations must be >= 1")
    points = np.unique(
        np.linspace(0, total_iterations - 1, min(samples, total_iterations))
        .round()
        .astype(np.int64)
    )
    dense_bits = weight_bits_dense(weight_count, value_bits)
    bits = np.empty(points.shape, dtype=np.int64)
    for i, t in enumerate(points):
        density = schedule.storage_density(int(t))
        bits[i] = min(
            dense_bits, weight_bits_csb(weight_count, density, value_bits)
        )
    return WeightFootprint(
        method=schedule.name,
        iterations=points,
        bits=bits,
        dense_bits=dense_bits,
        switch_iteration=schedule.format_switch_iteration(total_iterations),
    )


@dataclass
class ActivationFootprint:
    """Activation storage held live during one training iteration."""

    network: str
    n: int
    dense_bits: int  # all layers' iacts stored uncompressed
    compressed_bits: int  # Procrustes: long-term copies compressed
    per_layer_bits: dict[str, int] = field(default_factory=dict)

    @property
    def reduction(self) -> float:
        if self.compressed_bits == 0:
            return float("inf")
        return self.dense_bits / self.compressed_bits


def activation_footprint(
    layers: list[LayerSpec],
    n: int,
    act_density: float = 0.5,
    value_bits: int = 32,
    name: str = "network",
) -> ActivationFootprint:
    """Live activation storage across the fw-to-wu window.

    Every layer's input activations survive from its forward pass
    until its weight update — in the worst case (the first layer) the
    entire backward sweep.  The model charges all layers' iacts as
    live simultaneously, which is the peak; ``act_density`` is the
    post-relu non-zero fraction (~50 % is typical).
    """
    if n < 1:
        raise ValueError("minibatch n must be >= 1")
    dense_total = 0
    compressed_total = 0
    per_layer: dict[str, int] = {}
    for spec in layers:
        count = spec.iact_count(n)
        dense_total += count * value_bits
        slab = spec.h * spec.w
        compressed = storage_bits_at_density(
            count, act_density, value_bits, slab_size=max(1, slab)
        )
        compressed = min(compressed, count * value_bits)
        compressed_total += compressed
        per_layer[spec.name] = compressed
    return ActivationFootprint(
        network=name,
        n=n,
        dense_bits=dense_total,
        compressed_bits=compressed_total,
        per_layer_bits=per_layer,
    )


@dataclass
class WeightTraffic:
    """Average per-iteration DRAM weight traffic of one method."""

    method: str
    read_bits: float
    write_bits: float
    churn_bits: float  # re-encoding traffic from mask redistribution

    @property
    def total_bits(self) -> float:
        return self.read_bits + self.write_bits + self.churn_bits


def weight_traffic(
    schedule: SparsitySchedule,
    weight_count: int,
    total_iterations: int,
    value_bits: int = 32,
    samples: int = 256,
) -> WeightTraffic:
    """Average weight DRAM traffic per training iteration.

    Every iteration reads the stored weight set once (forward pass;
    the backward pass re-reads from the GLB) and writes the updated
    gradients back.  Methods whose masks churn (dynamic sparse
    reparameterization) additionally re-encode the compressed tensor
    around every rewire — charged here as one extra full write of the
    stored set per rewire interval, amortized per iteration.
    """
    if total_iterations < 1:
        raise ValueError("total_iterations must be >= 1")
    points = np.unique(
        np.linspace(0, total_iterations - 1, min(samples, total_iterations))
        .round()
        .astype(np.int64)
    )
    stored_bits = np.asarray(
        [
            min(
                weight_bits_dense(weight_count, value_bits),
                weight_bits_csb(
                    weight_count, schedule.storage_density(int(t)), value_bits
                ),
            )
            for t in points
        ],
        dtype=np.float64,
    )
    mean_stored = float(stored_bits.mean())
    churn = 0.0
    rewire_interval = getattr(schedule, "rewire_interval", None)
    if rewire_interval:
        churn = mean_stored / float(rewire_interval)
    return WeightTraffic(
        method=schedule.name,
        read_bits=mean_stored,
        write_bits=mean_stored,
        churn_bits=churn,
    )


@dataclass
class TrainingFootprint:
    """Peak training memory: weights + optimizer state + activations."""

    method: str
    weight_peak_bits: int
    optimizer_state_bits: int
    activation_bits: int

    @property
    def total_bits(self) -> int:
        return (
            self.weight_peak_bits
            + self.optimizer_state_bits
            + self.activation_bits
        )


def training_footprint(
    schedule: SparsitySchedule,
    layers: list[LayerSpec],
    n: int,
    total_iterations: int,
    act_density: float = 0.5,
    momentum_state: bool = True,
    value_bits: int = 32,
    name: str = "network",
) -> TrainingFootprint:
    """Peak memory of one method training one network.

    Optimizer state (momentum / accumulated gradients) follows the
    *stored* weight set: dense methods carry dense state, Dropback
    tracks accumulated gradients only for surviving weights.
    """
    weight_count = sum(spec.weight_count for spec in layers)
    wf = weight_footprint(schedule, weight_count, total_iterations,
                          value_bits=value_bits)
    state_bits = int(wf.peak_bits * (1 if momentum_state else 0))
    acts = activation_footprint(
        layers, n, act_density, value_bits, name=name
    )
    return TrainingFootprint(
        method=schedule.name,
        weight_peak_bits=wf.peak_bits,
        optimizer_state_bits=state_bits,
        activation_bits=acts.compressed_bits,
    )
