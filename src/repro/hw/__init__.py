"""Hardware unit models, energy/area tables, and array configurations."""

from repro.hw.area import AreaModel, Component, TABLE_III_COMPONENTS
from repro.hw.capacity import (
    MaskResidency,
    check_mask_residency,
    mask_residency_ok,
)
from repro.hw.config import (
    ArchConfig,
    BASELINE_16x16,
    PROCRUSTES_16x16,
    PROCRUSTES_32x32,
    arch_from_params,
)
from repro.hw.cyclesim import (
    CycleLevelSimulator,
    CycleSimResult,
    FabricConfig,
    IDEAL_FABRIC,
    SINGLE_WORD_FABRIC,
    SetTrace,
)
from repro.hw.energy import DEFAULT_ENERGY_TABLE, EnergyBreakdown, EnergyTable
from repro.hw.engine import PhaseResult, SparseTrainingEngine
from repro.hw.fabric_cost import FabricCostModel, FabricCostParams, FabricCosts
from repro.hw.interconnect import (
    Flow,
    TrafficPattern,
    needs_complex_balancing,
    traffic_pattern,
)
from repro.hw.memory import (
    ActivationFootprint,
    TrainingFootprint,
    WeightFootprint,
    activation_footprint,
    training_footprint,
    weight_bits_csb,
    weight_bits_dense,
    weight_footprint,
)
from repro.hw.network_engine import (
    LayerSlot,
    NetworkTrainingEngine,
    StepResult,
)
from repro.hw.pe import PEArraySimulator, PEArrayStats
from repro.hw.prng import WeightRecomputeUnit, xorshift32, xorshift32_stream
from repro.hw.qe_unit import QEUnitStats, QuantileEngine

__all__ = [
    "TABLE_III_COMPONENTS",
    "AreaModel",
    "Component",
    "MaskResidency",
    "check_mask_residency",
    "mask_residency_ok",
    "PhaseResult",
    "SparseTrainingEngine",
    "BASELINE_16x16",
    "PROCRUSTES_16x16",
    "PROCRUSTES_32x32",
    "ArchConfig",
    "arch_from_params",
    "IDEAL_FABRIC",
    "SINGLE_WORD_FABRIC",
    "CycleLevelSimulator",
    "CycleSimResult",
    "FabricConfig",
    "SetTrace",
    "DEFAULT_ENERGY_TABLE",
    "EnergyBreakdown",
    "EnergyTable",
    "Flow",
    "TrafficPattern",
    "needs_complex_balancing",
    "traffic_pattern",
    "FabricCostModel",
    "FabricCostParams",
    "FabricCosts",
    "ActivationFootprint",
    "TrainingFootprint",
    "WeightFootprint",
    "activation_footprint",
    "training_footprint",
    "weight_bits_csb",
    "weight_bits_dense",
    "weight_footprint",
    "PEArraySimulator",
    "PEArrayStats",
    "LayerSlot",
    "NetworkTrainingEngine",
    "StepResult",
    "WeightRecomputeUnit",
    "xorshift32",
    "xorshift32_stream",
    "QEUnitStats",
    "QuantileEngine",
]
