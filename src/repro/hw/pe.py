"""Behavioural PE-array simulator.

The paper's evaluation numbers come from an analytical model (our
:mod:`repro.dataflow`); this module provides a small functional
simulator used to *validate* that model's assumptions: it executes a
real (sparse) convolution on a 2-D PE array under the K,N mapping,
skipping zero weights exactly as the hardware does, and reports the
cycle counts the analytical model should predict (max-over-PEs per
working set, synchronized working sets).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hw.config import ArchConfig

__all__ = ["PEArrayStats", "PEArraySimulator"]


@dataclass
class PEArrayStats:
    """Activity counters accumulated over a simulation."""

    cycles: int = 0
    macs: int = 0
    working_sets: int = 0
    per_set_max: list[int] = field(default_factory=list)
    per_set_mean: list[float] = field(default_factory=list)

    @property
    def utilization(self) -> float:
        """Issued MACs over peak MAC slots across all cycles."""
        if self.cycles == 0:
            return 0.0
        return self.macs / (self.cycles * self._peak)

    _peak: int = 256


class PEArraySimulator:
    """Executes sparse convolutions tile-by-tile on the PE array.

    The K,N mapping assigns output channels to rows and minibatch
    samples to columns (Figure 11).  Each working set loads one
    (k-group, n-group) tile; a PE performs one MAC per cycle over the
    non-zero weights of its assigned output channel; the working set
    completes when its slowest PE finishes (synchronized execution,
    Figure 4).
    """

    def __init__(self, config: ArchConfig) -> None:
        self.config = config

    def run_conv_kn(
        self,
        x: np.ndarray,
        weight: np.ndarray,
        stride: int = 1,
        padding: int = 0,
    ) -> tuple[np.ndarray, PEArrayStats]:
        """Compute ``conv2d(x, weight)`` on the array; return (y, stats).

        Zero weights are skipped entirely — a PE assigned output
        channel ``k`` executes ``nnz(W[k]) * P * Q`` MACs per sample.
        The numerical result is checked against the dense convolution
        in the test suite; the stats feed the latency-model validation.
        """
        from repro.nn.functional import conv2d  # local to avoid cycle

        n, c, h, w = x.shape
        k = weight.shape[0]
        rows, cols = self.config.pe_rows, self.config.pe_cols
        y, _ = conv2d(x, weight, stride=stride, padding=padding)
        p, q = y.shape[2], y.shape[3]

        stats = PEArrayStats()
        stats._peak = self.config.n_pes
        nnz_per_k = np.count_nonzero(
            weight.reshape(k, -1), axis=1
        )
        # Working sets tile K over rows and N over columns.
        for k0 in range(0, k, rows):
            k_tile = nnz_per_k[k0 : k0 + rows]
            for n0 in range(0, n, cols):
                n_tile = min(cols, n - n0)
                # Per-PE MAC counts for this set: rows carry distinct k
                # (different work), columns replicate it per sample.
                per_pe = np.zeros((rows, cols), dtype=np.int64)
                per_pe[: k_tile.shape[0], :n_tile] = (
                    k_tile[:, None] * (p * q)
                )
                set_max = int(per_pe.max())
                stats.cycles += set_max
                stats.macs += int(per_pe.sum())
                stats.working_sets += 1
                stats.per_set_max.append(set_max)
                stats.per_set_mean.append(float(per_pe.mean()))
        return y, stats

    def imbalance_overheads(self, stats: PEArrayStats) -> np.ndarray:
        """Per-working-set overhead ``max/mean - 1`` (Figures 5/13)."""
        means = np.asarray(stats.per_set_mean)
        maxima = np.asarray(stats.per_set_max, dtype=np.float64)
        overheads = np.zeros_like(maxima)
        nonzero = means > 0
        overheads[nonzero] = maxima[nonzero] / means[nonzero] - 1.0
        return overheads
