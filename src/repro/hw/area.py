"""Silicon area and power accounting (Table III).

Component numbers are the paper's published Synopsys DC / FreePDK 45 nm
synthesis results.  From them we derive the per-PE and whole-chip
totals and the headline overheads: Procrustes costs ~14 % more area
and ~11 % more power than the equivalent dense accelerator when
running identical dense workloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Component", "AreaModel", "TABLE_III_COMPONENTS"]


@dataclass(frozen=True)
class Component:
    """One synthesized block: name, power (mW), area (um^2), scope."""

    name: str
    power_mw: float
    area_um2: float
    per_pe: bool
    procrustes_only: bool


#: Table III, verbatim.
TABLE_III_COMPONENTS: tuple[Component, ...] = (
    Component("FP32 MAC", 7.29, 18_875.72, per_pe=True, procrustes_only=False),
    Component("Register File", 15.61, 198_004.71, per_pe=True, procrustes_only=False),
    Component("PRNG", 0.35, 1_920.84, per_pe=True, procrustes_only=True),
    Component("Mask Memory", 2.65, 44_932.66, per_pe=True, procrustes_only=True),
    Component("Global Buffer", 73.74, 17_109_596.5, per_pe=False, procrustes_only=False),
    Component("Quantile Engine", 1.38, 9_861.4, per_pe=False, procrustes_only=True),
    Component("Load Balancer", 2.05, 8_725.23, per_pe=False, procrustes_only=True),
)


@dataclass
class AreaModel:
    """Whole-chip area/power roll-up for a given PE count."""

    n_pes: int = 256
    components: tuple[Component, ...] = field(default=TABLE_III_COMPONENTS)

    def _multiplier(self, component: Component) -> int:
        return self.n_pes if component.per_pe else 1

    def total_area_um2(self, include_procrustes: bool = True) -> float:
        return sum(
            c.area_um2 * self._multiplier(c)
            for c in self.components
            if include_procrustes or not c.procrustes_only
        )

    def total_power_mw(self, include_procrustes: bool = True) -> float:
        return sum(
            c.power_mw * self._multiplier(c)
            for c in self.components
            if include_procrustes or not c.procrustes_only
        )

    def area_overhead(self) -> float:
        """Procrustes-unit area as a fraction of the full chip (~0.14).

        Reproducing the paper's published component numbers, the extra
        units (PRNG + mask memory per PE, QE + load balancer globally)
        make up 14 % of the Procrustes die.
        """
        total = self.total_area_um2()
        extra = total - self.total_area_um2(include_procrustes=False)
        return extra / total

    def power_overhead(self) -> float:
        """Procrustes-unit power as a fraction of the full chip (~0.11).

        Per the paper's fairness note both designs run the same dense
        computation, so this is the added units' share of total power.
        """
        total = self.total_power_mw()
        extra = total - self.total_power_mw(include_procrustes=False)
        return extra / total

    def rows(self) -> list[dict[str, object]]:
        """Table III rows for the harness report."""
        return [
            {
                "component": c.name,
                "power_mw": c.power_mw,
                "area_um2": c.area_um2,
                "scope": "per-PE" if c.per_pe else "system",
                "procrustes_overhead": c.procrustes_only,
            }
            for c in self.components
        ]
