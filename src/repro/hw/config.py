"""Accelerator configuration (Table I of the paper).

The baseline dense training accelerator is a 16x16 PE array of FP32
MAC units with 1 KB register files, a 128 KB shared global buffer, and
three simple interconnects (two one-dimensional flows plus unicast).
Procrustes adds a per-PE weight-recompute PRNG, a global quantile
engine, and the load balancer; none of those change the base geometry.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = [
    "ArchConfig",
    "BASELINE_16x16",
    "PROCRUSTES_16x16",
    "PROCRUSTES_32x32",
    "arch_from_params",
]


@dataclass(frozen=True)
class ArchConfig:
    """Geometry and capacities of the 2-D PE-array accelerator."""

    name: str = "baseline-16x16"
    pe_rows: int = 16
    pe_cols: int = 16
    glb_bytes: int = 128 * 1024
    rf_bytes_per_pe: int = 1024
    word_bytes: int = 4  # FP32 training datatype
    macs_per_pe_per_cycle: int = 1
    #: Procrustes additions present? (WR unit, QE unit, load balancer)
    sparse_training_support: bool = False
    #: QE unit peak throughput (gradient updates per cycle).
    qe_updates_per_cycle: int = 4

    def __post_init__(self) -> None:
        if self.pe_rows < 1 or self.pe_cols < 1:
            raise ValueError(
                f"PE array must be at least 1x1 "
                f"(got {self.pe_rows}x{self.pe_cols})"
            )
        if self.rf_bytes_per_pe < self.word_bytes:
            raise ValueError("register file smaller than one word")

    @property
    def n_pes(self) -> int:
        return self.pe_rows * self.pe_cols

    @property
    def rf_words(self) -> int:
        """Register-file capacity in datatype words."""
        return self.rf_bytes_per_pe // self.word_bytes

    @property
    def glb_words(self) -> int:
        return self.glb_bytes // self.word_bytes

    @property
    def peak_macs_per_cycle(self) -> int:
        return self.n_pes * self.macs_per_pe_per_cycle

    def scaled(self, factor: int) -> "ArchConfig":
        """Scale the PE array by ``factor`` per side (Figure 20).

        Following the paper's scalability study, quadrupling the cores
        (2x per side) doubles the global buffer (a sqrt(4) factor).
        """
        if factor < 1:
            raise ValueError(f"scale factor must be >= 1 (got {factor})")
        return replace(
            self,
            name=f"{self.name}-x{factor}",
            pe_rows=self.pe_rows * factor,
            pe_cols=self.pe_cols * factor,
            glb_bytes=self.glb_bytes * factor,
        )


def arch_from_params(params) -> "ArchConfig":
    """The :class:`ArchConfig` a flat parameter mapping describes.

    The shared vocabulary of the ``design-point`` sweep evaluator and
    the design-space explorer's constraint predicates: ``array_side``,
    ``glb_kib``, ``rf_bytes``, and ``sparse``, each defaulting to the
    paper's Table I values, so feasibility screening and simulation
    always agree on the hardware a parameter dict means.
    """
    side = int(params.get("array_side", 16))
    return ArchConfig(
        name=f"explore-{side}x{side}",
        pe_rows=side,
        pe_cols=side,
        glb_bytes=int(params.get("glb_kib", 128)) * 1024,
        rf_bytes_per_pe=int(params.get("rf_bytes", 1024)),
        sparse_training_support=bool(params.get("sparse", True)),
    )


#: The paper's dense baseline (Table I).
BASELINE_16x16 = ArchConfig(name="baseline-16x16")

#: Procrustes: same geometry plus sparse-training hardware.
PROCRUSTES_16x16 = ArchConfig(
    name="procrustes-16x16", sparse_training_support=True
)

#: The scaled configuration of Figure 20 (1024 PEs, 256 KB GLB).
PROCRUSTES_32x32 = PROCRUSTES_16x16.scaled(2)
