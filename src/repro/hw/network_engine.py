"""Multi-layer behavioural training engine.

Chains :class:`~repro.hw.engine.SparseTrainingEngine` across a conv
stack so that one call executes an entire training iteration the way
the accelerator would (Figure 2, all layers):

* the **forward** sweep runs layer by layer (conv + relu), storing
  each layer's input activations *compressed* (Section IV-A: dense for
  immediate reuse by the next layer, zero-free CSB-style for the
  long-term fw→wu reuse);
* the **backward** sweep walks the layers in reverse through the relu
  masks and the CSB in-flight kernel rotation;
* the **weight update** sweep *decompresses the stored activations*
  (validating the long-term-reuse path numerically), computes each
  layer's weight gradient, filters it through the QE unit, and applies
  a masked SGD step directly to the CSB-resident weights — surviving
  positions update, pruned positions stay exactly zero.

The test suite asserts the whole iteration against the NumPy substrate
(:mod:`repro.nn.functional`), making this the end-to-end executable
proof that compressed weights + compressed activations support every
access pattern training needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hw.config import ArchConfig
from repro.hw.engine import PhaseResult, SparseTrainingEngine
from repro.hw.qe_unit import QuantileEngine
from repro.sparse.activations import CompressedActivations
from repro.sparse.csb import CSBTensor

__all__ = ["LayerSlot", "StepResult", "NetworkTrainingEngine"]


@dataclass
class LayerSlot:
    """One conv layer resident on the accelerator."""

    name: str
    weights: CSBTensor
    padding: int = 0
    #: Set during the forward sweep, consumed by wu.
    stored_iacts: CompressedActivations | None = None
    relu_mask: np.ndarray | None = None


@dataclass
class StepResult:
    """Totals of one whole-network training iteration."""

    phases: dict[str, dict[str, PhaseResult]] = field(default_factory=dict)
    activation_bits_dense: int = 0
    activation_bits_compressed: int = 0
    gradients_kept: int = 0
    gradients_seen: int = 0

    @property
    def total_cycles(self) -> int:
        return sum(
            r.cycles for per in self.phases.values() for r in per.values()
        )

    @property
    def total_macs(self) -> int:
        return sum(
            r.macs for per in self.phases.values() for r in per.values()
        )

    @property
    def activation_compression(self) -> float:
        if self.activation_bits_compressed == 0:
            return float("inf")
        return self.activation_bits_dense / self.activation_bits_compressed


class NetworkTrainingEngine:
    """Executes whole-network training iterations from CSB weights."""

    def __init__(
        self,
        config: ArchConfig,
        layers: list[tuple[str, np.ndarray, int]],
        qe: QuantileEngine | None = None,
        lr: float = 0.01,
    ) -> None:
        """``layers`` is a list of ``(name, dense_weight, padding)``;
        weights are compressed immediately and the dense copies are
        never kept."""
        if not layers:
            raise ValueError("need at least one layer")
        if lr <= 0.0:
            raise ValueError(f"learning rate must be positive (got {lr})")
        self.config = config
        self.lr = lr
        self._engine = SparseTrainingEngine(config, qe=None)
        self._qe = qe
        self.slots = [
            LayerSlot(name=name, weights=CSBTensor.from_dense(w), padding=pad)
            for name, w, pad in layers
        ]

    # ------------------------------------------------------------------
    # the three sweeps
    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray) -> tuple[np.ndarray, StepResult]:
        """Forward sweep: conv + relu per layer; iacts stored compressed."""
        result = StepResult()
        current = x
        for slot in self.slots:
            slot.stored_iacts = CompressedActivations.from_dense(current)
            result.activation_bits_dense += current.size * 32
            result.activation_bits_compressed += (
                slot.stored_iacts.total_storage_bits()
            )
            fw = self._engine.forward(current, slot.weights, slot.padding)
            slot.relu_mask = fw.tensor > 0.0
            current = np.where(slot.relu_mask, fw.tensor, 0.0)
            result.phases[slot.name] = {"fw": fw}
        return current, result

    def train_step(self, x: np.ndarray, dy: np.ndarray) -> StepResult:
        """One full iteration: forward, backward, QE-filtered update.

        ``dy`` is the loss gradient w.r.t. the network output (after
        the final relu) — the engine is a hardware model, so the loss
        head stays outside it.
        """
        _, result = self.forward(x)

        # Backward sweep, newest layer first.
        grad = dy
        wu_inputs: list[np.ndarray] = []
        for slot in reversed(self.slots):
            grad = np.where(slot.relu_mask, grad, 0.0)
            wu_inputs.append(grad)
            bw = self._engine.backward(grad, slot.weights, slot.padding)
            result.phases[slot.name]["bw"] = bw
            grad = bw.tensor
        wu_inputs.reverse()

        # Weight-update sweep: decompress the stored iacts (long-term
        # reuse path), filter gradients through the QE, apply masked SGD.
        for slot, dout in zip(self.slots, wu_inputs):
            assert slot.stored_iacts is not None
            iacts = slot.stored_iacts.to_dense()
            wu, keep, _ = SparseTrainingEngine(
                self.config, qe=self._qe
            ).weight_update(iacts, dout, slot.weights, slot.padding)
            result.phases[slot.name]["wu"] = wu
            result.gradients_seen += keep.size
            result.gradients_kept += int(keep.sum())
            self._apply_masked_sgd(slot, np.where(keep, wu.tensor, 0.0))
        return result

    def _apply_masked_sgd(self, slot: LayerSlot, dweight: np.ndarray) -> None:
        """SGD on the surviving weight positions only.

        The tracked set is the CSB mask: positions already stored
        update in place; pruned positions stay zero (their gradients
        were either QE-discarded or fall outside the mask — in full
        Procrustes a surviving new gradient would enter the tracked
        set, which :mod:`repro.core.dropback` models at the algorithm
        level).
        """
        current = slot.weights.to_dense()
        mask = current != 0.0
        updated = current - self.lr * np.where(mask, dweight, 0.0)
        # Keep exact zeros pruned even if an update would cancel to 0.
        slot.weights = CSBTensor.from_dense(np.where(mask, updated, 0.0))

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def dense_weights(self) -> dict[str, np.ndarray]:
        return {slot.name: slot.weights.to_dense() for slot in self.slots}

    def weight_density(self) -> float:
        nnz = sum(slot.weights.nnz for slot in self.slots)
        total = sum(slot.weights.dense_size for slot in self.slots)
        return nnz / total if total else 0.0
