"""xorshift PRNG and the weight-recompute (WR) unit.

Dropback resets pruned weights to their *initial* values, so the
accelerator must be able to regenerate any initial weight on demand
without storing the dense initialization.  The Procrustes WR unit
(Section V, Figure 14) does this with three xorshift generators whose
outputs are summed to approximate a Gaussian, scaled by a per-layer
factor implementing Xavier/Kaiming initialization and the
initial-weight decay, and added to the stored accumulated gradient
(tracked weights) or zero (pruned weights).

Crucially, the unit holds **no hidden state**: the output is a pure
function of the seed and the weight index, which is what makes pruned
storage free.  The models here are vectorized over index arrays but
bit-exact per element.
"""

from __future__ import annotations

import numpy as np

from repro.core.decay import InitialWeightDecay

__all__ = ["xorshift32", "xorshift32_stream", "WeightRecomputeUnit"]

_U32 = np.uint32
_MASK32 = np.uint32(0xFFFFFFFF)


def xorshift32(state: np.ndarray | int) -> np.ndarray:
    """One step of Marsaglia's 32-bit xorshift (13, 17, 5 triple).

    Accepts scalars or arrays of uint32; zero states are mapped to a
    non-zero constant first (xorshift has a fixed point at 0).
    """
    x = np.atleast_1d(np.asarray(state, dtype=_U32)).copy()
    x[x == 0] = _U32(0x6D2B79F5)
    x ^= (x << _U32(13)) & _MASK32
    x ^= x >> _U32(17)
    x ^= (x << _U32(5)) & _MASK32
    return x


def xorshift32_stream(seed: int, length: int) -> np.ndarray:
    """Sequential xorshift stream of ``length`` values from ``seed``."""
    if length < 0:
        raise ValueError(f"length must be >= 0 (got {length})")
    out = np.empty(length, dtype=_U32)
    state = np.asarray([seed], dtype=_U32)
    for i in range(length):
        state = xorshift32(state)
        out[i] = state[0]
    return out


def _mix(seed: int, stream: int, indices: np.ndarray) -> np.ndarray:
    """Derive per-index starting states for one of the three streams.

    A multiplicative hash decorrelates adjacent indices so the three
    summed streams behave like independent uniforms per index.
    """
    golden = _U32(0x9E3779B9)
    x = (indices.astype(np.uint64) * np.uint64(0x85EBCA6B)) & np.uint64(0xFFFFFFFF)
    x = x.astype(_U32)
    x ^= _U32((seed * 0x27D4EB2F + stream * 0x165667B1) & 0xFFFFFFFF)
    x = (x + golden) & _MASK32
    return x


class WeightRecomputeUnit:
    """Behavioural model of the per-PE WR unit.

    Parameters
    ----------
    seed:
        Global initialization seed (shared by all PEs; the weight index
        selects the value, so every PE regenerates identical weights).
    sigma:
        Initialization standard deviation for the layer (from
        :mod:`repro.nn.init`'s Xavier/Kaiming formulae).
    decay:
        The initial-weight decay schedule (Algorithm 3); the decayed
        sigma is folded into the unit's scaling factor each iteration.
    rounds:
        xorshift steps applied to each mixed state before use; a couple
        of rounds suffice to whiten the hash.
    """

    #: Sum of three U(0,1) has variance 3/12; dividing by sqrt(1/4)
    #: normalizes the Irwin-Hall(3) sum to unit variance.
    _IRWIN_HALL_STD = 0.5

    def __init__(
        self,
        seed: int,
        sigma: float,
        decay: InitialWeightDecay | None = None,
        rounds: int = 2,
    ) -> None:
        if sigma < 0.0:
            raise ValueError(f"sigma must be >= 0 (got {sigma})")
        if rounds < 1:
            raise ValueError(f"rounds must be >= 1 (got {rounds})")
        self.seed = int(seed)
        self.sigma = float(sigma)
        self.decay = decay or InitialWeightDecay(decay=1.0, zero_after=None)
        self.rounds = rounds

    def _uniforms(self, stream: int, indices: np.ndarray) -> np.ndarray:
        state = _mix(self.seed, stream, indices)
        for _ in range(self.rounds):
            state = xorshift32(state)
        return state.astype(np.float64) / 4294967296.0

    def raw_gaussian(self, indices: np.ndarray) -> np.ndarray:
        """Unscaled ~N(0, 1) values for the given weight indices."""
        indices = np.atleast_1d(np.asarray(indices, dtype=np.int64))
        total = sum(self._uniforms(stream, indices) for stream in range(3))
        return (total - 1.5) / self._IRWIN_HALL_STD

    def scaling_factor(self, iteration: int) -> float:
        """The unit's current multiplier: sigma times the decay."""
        return self.sigma * self.decay.multiplier(iteration)

    def initial_weights(
        self, indices: np.ndarray, iteration: int = 0
    ) -> np.ndarray:
        """Regenerated (decayed) initial values, as FP32."""
        scale = self.scaling_factor(iteration)
        return (self.raw_gaussian(indices) * scale).astype(np.float32)

    def materialize(
        self,
        indices: np.ndarray,
        accumulated: np.ndarray,
        tracked: np.ndarray,
        iteration: int,
    ) -> np.ndarray:
        """Full WR datapath: ``decayed_init + (accum if tracked else 0)``."""
        init = self.initial_weights(indices, iteration).astype(np.float64)
        return init + np.where(tracked, accumulated, 0.0)
