"""Optimizers for the substrate.

:class:`SGD` is the dense baseline (the paper's "baseline (SGD)"
curves); the sparse-training optimizer lives in
:mod:`repro.core.dropback` and is re-exported here so training code can
import both from one place.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.dropback import DropbackConfig, DropbackOptimizer
from repro.nn.layers import Parameter

__all__ = ["SGD", "DropbackOptimizer", "DropbackConfig"]


class SGD:
    """Plain minibatch SGD with optional momentum and L2 weight decay."""

    def __init__(
        self,
        parameters: Sequence[Parameter],
        lr: float = 0.1,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        if lr <= 0.0:
            raise ValueError(f"lr must be positive (got {lr})")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must lie in [0, 1) (got {momentum})")
        self.parameters = list(parameters)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: dict[int, np.ndarray] = {}
        self.iteration = 0

    def step(self) -> None:
        for param in self.parameters:
            if param.grad is None:
                raise ValueError(
                    f"parameter {param.name!r} has no gradient; run backward "
                    "before step()"
                )
            grad = param.grad
            if self.weight_decay > 0.0:
                grad = grad + self.weight_decay * param.data
            if self.momentum > 0.0:
                velocity = self._velocity.setdefault(
                    id(param), np.zeros_like(param.data)
                )
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            param.data = param.data - self.lr * grad
        self.iteration += 1
