"""NumPy DNN training substrate (the paper's PyTorch stand-in).

Layers with explicit forward/backward, a cross-entropy network
container, SGD, synthetic datasets, and a measuring training loop.
"""

from repro.nn.checkpoint import load_checkpoint, save_checkpoint
from repro.nn.data import Dataset, make_blob_images, make_striped_images, minibatches
from repro.nn.layers import (
    BatchNorm2d,
    Concat,
    Conv2d,
    Flatten,
    GlobalAvgPool,
    Layer,
    Linear,
    MaxPool2d,
    Parameter,
    ReLU,
    Residual,
    Sequential,
)
from repro.nn.model import Network
from repro.nn.optim import DropbackConfig, DropbackOptimizer, SGD
from repro.nn.schedules import ScheduledLR, cosine_decay, step_decay, warmup
from repro.nn.trainer import Trainer, TrainingHistory

__all__ = [
    "load_checkpoint",
    "save_checkpoint",
    "Dataset",
    "make_blob_images",
    "make_striped_images",
    "minibatches",
    "BatchNorm2d",
    "Concat",
    "Conv2d",
    "Flatten",
    "GlobalAvgPool",
    "Layer",
    "Linear",
    "MaxPool2d",
    "Parameter",
    "ReLU",
    "Residual",
    "Sequential",
    "Network",
    "SGD",
    "DropbackConfig",
    "DropbackOptimizer",
    "ScheduledLR",
    "cosine_decay",
    "step_decay",
    "warmup",
    "Trainer",
    "TrainingHistory",
]
