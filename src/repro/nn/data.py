"""Synthetic image-classification datasets.

The paper's training experiments use CIFAR-10 and ImageNet, which are
not available offline.  The Procrustes training dynamics (Dropback
tracking, init decay, quantile thresholds) depend on having a
learnable task with realistic gradient structure, not on those exact
pixels, so we substitute deterministic synthetic datasets:

* :func:`make_blob_images` — each class is a smoothed random template;
  samples add noise and small circular shifts.  Easy enough that the
  mini networks reach high accuracy in a few epochs, hard enough that
  untrained networks score at chance.
* :func:`make_striped_images` — classes differ in oriented frequency
  content, exercising conv filters more than raw templates do.

Both return train/validation splits as ``Dataset`` tuples of NumPy
arrays, fully determined by their seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

__all__ = [
    "Dataset",
    "make_blob_images",
    "make_striped_images",
    "minibatches",
]


@dataclass(frozen=True)
class Dataset:
    """Arrays for one split: images ``(N, C, H, W)`` and labels ``(N,)``."""

    images: np.ndarray
    labels: np.ndarray

    def __post_init__(self) -> None:
        if self.images.shape[0] != self.labels.shape[0]:
            raise ValueError(
                f"images/labels length mismatch "
                f"({self.images.shape[0]} vs {self.labels.shape[0]})"
            )

    def __len__(self) -> int:
        return self.images.shape[0]

    @property
    def n_classes(self) -> int:
        return int(self.labels.max()) + 1


def _smooth(image: np.ndarray, passes: int = 2) -> np.ndarray:
    """Cheap box smoothing via circular shifts (keeps shape)."""
    for _ in range(passes):
        image = (
            image
            + np.roll(image, 1, axis=-1)
            + np.roll(image, -1, axis=-1)
            + np.roll(image, 1, axis=-2)
            + np.roll(image, -1, axis=-2)
        ) / 5.0
    return image


def _split(
    images: np.ndarray, labels: np.ndarray, val_fraction: float, rng
) -> tuple[Dataset, Dataset]:
    n = images.shape[0]
    order = rng.permutation(n)
    images, labels = images[order], labels[order]
    n_val = max(1, int(round(n * val_fraction)))
    return (
        Dataset(images[n_val:], labels[n_val:]),
        Dataset(images[:n_val], labels[:n_val]),
    )


def make_blob_images(
    n_classes: int = 10,
    samples_per_class: int = 64,
    channels: int = 3,
    size: int = 16,
    noise: float = 0.6,
    val_fraction: float = 0.2,
    seed: int = 0,
) -> tuple[Dataset, Dataset]:
    """Template-plus-noise classification (the CIFAR-10 stand-in)."""
    rng = np.random.default_rng(seed)
    templates = _smooth(
        rng.normal(0.0, 1.0, size=(n_classes, channels, size, size))
    )
    # Normalize template energy so no class is trivially louder.
    templates /= np.sqrt((templates ** 2).mean(axis=(1, 2, 3), keepdims=True))
    images = []
    labels = []
    for cls in range(n_classes):
        base = templates[cls]
        for _ in range(samples_per_class):
            shift_h = int(rng.integers(-2, 3))
            shift_w = int(rng.integers(-2, 3))
            sample = np.roll(base, (shift_h, shift_w), axis=(1, 2))
            sample = sample + noise * rng.normal(
                0.0, 1.0, size=base.shape
            )
            images.append(sample)
            labels.append(cls)
    return _split(
        np.asarray(images), np.asarray(labels, dtype=np.int64), val_fraction, rng
    )


def make_striped_images(
    n_classes: int = 4,
    samples_per_class: int = 64,
    channels: int = 1,
    size: int = 16,
    noise: float = 0.4,
    val_fraction: float = 0.2,
    seed: int = 0,
) -> tuple[Dataset, Dataset]:
    """Classes distinguished by stripe orientation/frequency."""
    rng = np.random.default_rng(seed)
    coords = np.arange(size)
    yy, xx = np.meshgrid(coords, coords, indexing="ij")
    images = []
    labels = []
    for cls in range(n_classes):
        angle = np.pi * cls / n_classes
        freq = 2.0 * np.pi * (1.0 + cls % 3) / size
        for _ in range(samples_per_class):
            phase = rng.uniform(0, 2 * np.pi)
            sample = np.sin(
                freq * (np.cos(angle) * xx + np.sin(angle) * yy) + phase
            )
            sample = np.broadcast_to(
                sample, (channels, size, size)
            ) + noise * rng.normal(0.0, 1.0, size=(channels, size, size))
            images.append(sample)
            labels.append(cls)
    return _split(
        np.asarray(images), np.asarray(labels, dtype=np.int64), val_fraction, rng
    )


def minibatches(
    dataset: Dataset,
    batch_size: int,
    rng: np.random.Generator,
    drop_last: bool = True,
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield shuffled ``(images, labels)`` minibatches for one epoch.

    ``drop_last`` mirrors the fixed-minibatch assumption the Procrustes
    dataflow leans on (the N dimension is always present and full).
    """
    n = len(dataset)
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1 (got {batch_size})")
    order = rng.permutation(n)
    end = n - (n % batch_size) if drop_last else n
    for start in range(0, end, batch_size):
        idx = order[start : start + batch_size]
        yield dataset.images[idx], dataset.labels[idx]
