"""Checkpointing: persist models and Dropback optimizer state.

Saves to a single ``.npz`` — parameters (plus batch-norm running
statistics) for any :class:`~repro.nn.model.Network`, and optionally
the Dropback state needed to resume sparse training bit-exactly: the
initial weights, accumulated gradients, iteration counter, and (in
quantile mode) the tracked mask and the estimator's register.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.core.dropback import DropbackOptimizer
from repro.nn.layers import BatchNorm2d
from repro.nn.model import Network

__all__ = ["save_checkpoint", "load_checkpoint"]

_PARAM = "param/"
_BN = "bn/"
_OPT = "opt/"


def save_checkpoint(
    path: str | Path,
    model: Network,
    optimizer: DropbackOptimizer | None = None,
) -> None:
    """Write model (and optionally optimizer) state to ``path``."""
    arrays: dict[str, np.ndarray] = {}
    for param in model.parameters():
        arrays[_PARAM + param.name] = param.data
    for layer in model.all_layers():
        if isinstance(layer, BatchNorm2d):
            arrays[_BN + layer.name + ".mean"] = layer.running_mean
            arrays[_BN + layer.name + ".var"] = layer.running_var
    if optimizer is not None:
        arrays[_OPT + "iteration"] = np.array([optimizer.iteration])
        for state in optimizer._prunable:
            arrays[_OPT + "initial/" + state.param.name] = state.initial
            arrays[_OPT + "accum/" + state.param.name] = state.accumulated
        if optimizer._tracked_mask is not None:
            arrays[_OPT + "tracked_mask"] = optimizer._tracked_mask
        if optimizer.threshold is not None:
            arrays[_OPT + "threshold"] = np.array([optimizer.threshold])
    np.savez_compressed(Path(path), **arrays)


def load_checkpoint(
    path: str | Path,
    model: Network,
    optimizer: DropbackOptimizer | None = None,
) -> None:
    """Restore state saved by :func:`save_checkpoint` in place.

    The model (and optimizer, if given) must have the same structure
    as at save time; mismatched names raise ``KeyError``.
    """
    with np.load(Path(path)) as data:
        for param in model.parameters():
            param.data = data[_PARAM + param.name].copy()
        for layer in model.all_layers():
            if isinstance(layer, BatchNorm2d):
                layer.running_mean = data[_BN + layer.name + ".mean"].copy()
                layer.running_var = data[_BN + layer.name + ".var"].copy()
        if optimizer is not None:
            optimizer.iteration = int(data[_OPT + "iteration"][0])
            for state in optimizer._prunable:
                state.initial = data[_OPT + "initial/" + state.param.name].copy()
                state.accumulated = data[
                    _OPT + "accum/" + state.param.name
                ].copy()
            if _OPT + "tracked_mask" in data:
                optimizer._tracked_mask = data[_OPT + "tracked_mask"].copy()
            if _OPT + "threshold" in data and optimizer._tracker is not None:
                optimizer._tracker._estimator._scalar._estimate = float(
                    data[_OPT + "threshold"][0]
                )
