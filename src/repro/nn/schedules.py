"""Learning-rate schedules for the substrate's optimizers.

The paper trains hundreds of epochs with standard schedules; the mini
runs mostly use constant rates, but the schedules are provided for the
longer experiments and as library functionality.  A schedule is a
callable ``iteration -> multiplier`` applied to the optimizer's base
learning rate via :class:`ScheduledLR`.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

__all__ = ["step_decay", "cosine_decay", "warmup", "ScheduledLR"]


def step_decay(
    boundaries: Sequence[int], factor: float = 0.1
) -> Callable[[int], float]:
    """Multiply the rate by ``factor`` at each boundary iteration."""
    if factor <= 0.0:
        raise ValueError(f"factor must be positive (got {factor})")
    sorted_bounds = sorted(boundaries)

    def schedule(iteration: int) -> float:
        crossed = sum(1 for b in sorted_bounds if iteration >= b)
        return factor ** crossed

    return schedule


def cosine_decay(
    total_iterations: int, floor: float = 0.0
) -> Callable[[int], float]:
    """Cosine anneal from 1 to ``floor`` over ``total_iterations``."""
    if total_iterations < 1:
        raise ValueError("total_iterations must be >= 1")
    if not 0.0 <= floor <= 1.0:
        raise ValueError(f"floor must lie in [0, 1] (got {floor})")

    def schedule(iteration: int) -> float:
        progress = min(iteration / total_iterations, 1.0)
        return floor + (1.0 - floor) * 0.5 * (
            1.0 + math.cos(math.pi * progress)
        )

    return schedule


def warmup(
    iterations: int, base: Callable[[int], float] | None = None
) -> Callable[[int], float]:
    """Linear ramp from 0 to 1 over ``iterations``, then ``base``."""
    if iterations < 1:
        raise ValueError("iterations must be >= 1")

    def schedule(iteration: int) -> float:
        if iteration < iterations:
            return (iteration + 1) / iterations
        return base(iteration - iterations) if base else 1.0

    return schedule


class ScheduledLR:
    """Wrap an optimizer so each ``step()`` applies a schedule.

    Works with any optimizer exposing ``lr`` (``repro.nn.optim.SGD``)
    or a ``config.lr`` (``DropbackOptimizer``).
    """

    def __init__(self, optimizer, schedule: Callable[[int], float]) -> None:
        self.optimizer = optimizer
        self.schedule = schedule
        self._base_lr = self._get_lr()
        self._iteration = 0

    def _get_lr(self) -> float:
        if hasattr(self.optimizer, "lr"):
            return self.optimizer.lr
        return self.optimizer.config.lr

    def _set_lr(self, value: float) -> None:
        if hasattr(self.optimizer, "lr"):
            self.optimizer.lr = value
        else:
            self.optimizer.config.lr = value

    @property
    def current_lr(self) -> float:
        return self._base_lr * self.schedule(self._iteration)

    def step(self) -> None:
        self._set_lr(self.current_lr)
        self.optimizer.step()
        self._iteration += 1

    def __getattr__(self, name: str):
        # Delegate reporting helpers (masks, sparsity, ...) to the
        # wrapped optimizer.
        return getattr(self.optimizer, name)
