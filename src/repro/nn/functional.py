"""Low-level forward/backward kernels for the training substrate.

The paper trains its models with PyTorch; offline we implement the
needed operators from scratch on NumPy.  Layouts follow the paper's
loop nest (Algorithm 1): activations are ``(N, C, H, W)``, convolution
weights are ``(K, C/groups, R, S)``.

Every forward function returns ``(output, cache)`` and has a matching
``*_backward(dout, cache)`` that returns gradients in the same order
as the forward inputs.  All kernels are batched and vectorized; the
only Python-level loop is the R x S scatter in the convolution input
gradient (at most ``R*S`` iterations).
"""

from __future__ import annotations

from typing import NamedTuple

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

__all__ = [
    "conv2d",
    "conv2d_backward",
    "conv2d_weight_grad",
    "linear",
    "linear_backward",
    "batchnorm2d",
    "batchnorm2d_backward",
    "relu",
    "relu_backward",
    "maxpool2d",
    "maxpool2d_backward",
    "global_avgpool",
    "global_avgpool_backward",
    "softmax",
    "cross_entropy",
    "conv_output_size",
]


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output extent of a convolution along one axis."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"convolution output collapses to {out} "
            f"(size={size}, kernel={kernel}, stride={stride}, padding={padding})"
        )
    return out


class _ConvCache(NamedTuple):
    x_shape: tuple[int, ...]
    windows: np.ndarray  # (N, G, Cg, P, Q, R, S) strided view into padded x
    weight_shape: tuple[int, ...]
    weight_grouped: np.ndarray  # (G, Kg, Cg, R, S)
    stride: int
    padding: int
    groups: int


def _grouped_windows(
    x: np.ndarray, kernel: tuple[int, int], stride: int, padding: int, groups: int
) -> np.ndarray:
    """Return strided sliding windows shaped ``(N, G, Cg, P, Q, R, S)``."""
    n, c, _, _ = x.shape
    if c % groups:
        raise ValueError(f"channels {c} not divisible by groups {groups}")
    if padding:
        x = np.pad(
            x, ((0, 0), (0, 0), (padding, padding), (padding, padding))
        )
    windows = sliding_window_view(x, kernel, axis=(2, 3))
    windows = windows[:, :, ::stride, ::stride, :, :]
    _, _, p, q, r, s = windows.shape
    return windows.reshape(n, groups, c // groups, p, q, r, s)


def conv2d(
    x: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray | None = None,
    stride: int = 1,
    padding: int = 0,
    groups: int = 1,
) -> tuple[np.ndarray, _ConvCache]:
    """2-D convolution forward pass (Figure 2a).

    ``x``: (N, C, H, W); ``weight``: (K, C/groups, R, S);
    returns ``y``: (N, K, P, Q).
    """
    k, cg, r, s = weight.shape
    if k % groups:
        raise ValueError(f"out channels {k} not divisible by groups {groups}")
    windows = _grouped_windows(x, (r, s), stride, padding, groups)
    if windows.shape[2] != cg:
        raise ValueError(
            f"weight expects {cg} channels/group, input provides "
            f"{windows.shape[2]}"
        )
    w_grouped = weight.reshape(groups, k // groups, cg, r, s)
    y = np.einsum(
        "ngcpqrs,gkcrs->ngkpq", windows, w_grouped, optimize=True
    )
    n = x.shape[0]
    y = y.reshape(n, k, y.shape[3], y.shape[4])
    if bias is not None:
        y = y + bias[None, :, None, None]
    cache = _ConvCache(
        x_shape=x.shape,
        windows=windows,
        weight_shape=weight.shape,
        weight_grouped=w_grouped,
        stride=stride,
        padding=padding,
        groups=groups,
    )
    return y, cache


def conv2d_backward(
    dout: np.ndarray, cache: _ConvCache, need_dx: bool = True
) -> tuple[np.ndarray | None, np.ndarray, np.ndarray]:
    """Gradients of :func:`conv2d`.

    Returns ``(dx, dweight, dbias)``.  The input gradient corresponds
    to the paper's backward pass (convolution with 180-degree-rotated
    filters, Figure 2b) and the weight gradient to the weight-update
    pass (Figure 2c); both fall out of the same cached windows.
    ``need_dx=False`` skips the input gradient (first layer).
    """
    n, c, h, w = cache.x_shape
    k, cg, r, s = cache.weight_shape
    groups = cache.groups
    stride = cache.stride
    padding = cache.padding
    kg = k // groups
    p, q = dout.shape[2], dout.shape[3]
    dout_g = dout.reshape(n, groups, kg, p, q)

    dweight = np.einsum(
        "ngcpqrs,ngkpq->gkcrs", cache.windows, dout_g, optimize=True
    ).reshape(k, cg, r, s)
    dbias = dout.sum(axis=(0, 2, 3))

    dx = None
    if need_dx:
        hp, wp = h + 2 * padding, w + 2 * padding
        dxp = np.zeros((n, groups, c // groups, hp, wp), dtype=dout.dtype)
        wg = cache.weight_grouped
        for ri in range(r):
            for si in range(s):
                # contribution of filter tap (ri, si) to every input
                # position it touched: x[.., p*stride+ri, q*stride+si]
                contrib = np.einsum(
                    "gkc,ngkpq->ngcpq", wg[:, :, :, ri, si], dout_g,
                    optimize=True,
                )
                dxp[
                    :,
                    :,
                    :,
                    ri : ri + stride * p : stride,
                    si : si + stride * q : stride,
                ] += contrib
        dxp = dxp.reshape(n, c, hp, wp)
        if padding:
            dx = dxp[:, :, padding:-padding, padding:-padding]
        else:
            dx = dxp
    return dx, dweight, dbias


def conv2d_weight_grad(
    x: np.ndarray,
    dout: np.ndarray,
    kernel: tuple[int, int],
    stride: int = 1,
    padding: int = 0,
    groups: int = 1,
) -> np.ndarray:
    """Standalone weight-update convolution (Figure 2c).

    Computes ``dL/dW = x * dL/dy`` without a cached forward pass — the
    form the accelerator's weight-update phase executes.  ``x`` is
    (N, C, H, W), ``dout`` is (N, K, P, Q); returns (K, C/groups, R, S).
    """
    r, s = kernel
    windows = _grouped_windows(x, (r, s), stride, padding, groups)
    n, k = dout.shape[0], dout.shape[1]
    dout_g = dout.reshape(n, groups, k // groups, dout.shape[2], dout.shape[3])
    dweight = np.einsum(
        "ngcpqrs,ngkpq->gkcrs", windows, dout_g, optimize=True
    )
    return dweight.reshape(k, windows.shape[2], r, s)


class _LinearCache(NamedTuple):
    x: np.ndarray


def linear(
    x: np.ndarray, weight: np.ndarray, bias: np.ndarray | None = None
) -> tuple[np.ndarray, _LinearCache]:
    """Fully-connected forward: ``y = x @ W.T + b``.

    ``x``: (N, C_in); ``weight``: (C_out, C_in).
    """
    y = x @ weight.T
    if bias is not None:
        y = y + bias
    return y, _LinearCache(x=x)


def linear_backward(
    dout: np.ndarray, weight: np.ndarray, cache: _LinearCache
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Gradients of :func:`linear`: ``(dx, dweight, dbias)``.

    ``dx = dout @ W`` is the fc analogue of the backward pass (the
    transpose access the CSB format must support, Section II-D).
    """
    dx = dout @ weight
    dweight = dout.T @ cache.x
    dbias = dout.sum(axis=0)
    return dx, dweight, dbias


class _BatchNormCache(NamedTuple):
    x_hat: np.ndarray
    inv_std: np.ndarray
    gamma: np.ndarray


def batchnorm2d(
    x: np.ndarray,
    gamma: np.ndarray,
    beta: np.ndarray,
    running_mean: np.ndarray,
    running_var: np.ndarray,
    training: bool,
    momentum: float = 0.1,
    eps: float = 1e-5,
) -> tuple[np.ndarray, _BatchNormCache | None]:
    """Batch normalization over (N, H, W) per channel.

    In training mode the running statistics are updated in place.  The
    paper leans on batch norm's ubiquity: it is what destroys gradient
    sparsity in the backward pass (Section II-B), which is why
    Procrustes does not try to exploit dL/dy sparsity.
    """
    if training:
        mean = x.mean(axis=(0, 2, 3))
        var = x.var(axis=(0, 2, 3))
        running_mean *= 1.0 - momentum
        running_mean += momentum * mean
        running_var *= 1.0 - momentum
        running_var += momentum * var
    else:
        mean = running_mean
        var = running_var
    inv_std = 1.0 / np.sqrt(var + eps)
    x_hat = (x - mean[None, :, None, None]) * inv_std[None, :, None, None]
    y = gamma[None, :, None, None] * x_hat + beta[None, :, None, None]
    cache = (
        _BatchNormCache(x_hat=x_hat, inv_std=inv_std, gamma=gamma)
        if training
        else None
    )
    return y, cache


def batchnorm2d_backward(
    dout: np.ndarray, cache: _BatchNormCache
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Gradients of training-mode :func:`batchnorm2d`.

    Returns ``(dx, dgamma, dbeta)``.  Note dx is dense even when dout
    is sparse — the effect the paper highlights for dL/dy.
    """
    x_hat, inv_std, gamma = cache
    dgamma = (dout * x_hat).sum(axis=(0, 2, 3))
    dbeta = dout.sum(axis=(0, 2, 3))
    dx_hat = dout * gamma[None, :, None, None]
    dx = (
        dx_hat
        - dx_hat.mean(axis=(0, 2, 3), keepdims=True)
        - x_hat * (dx_hat * x_hat).mean(axis=(0, 2, 3), keepdims=True)
    ) * inv_std[None, :, None, None]
    return dx, dgamma, dbeta


def relu(x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """ReLU forward; the cache is the positive mask.

    The mask's density is the activation sparsity the weight-update
    phase exploits (Section II-B).
    """
    mask = x > 0.0
    return x * mask, mask


def relu_backward(dout: np.ndarray, mask: np.ndarray) -> np.ndarray:
    return dout * mask


class _MaxPoolCache(NamedTuple):
    x_shape: tuple[int, ...]
    argmax: np.ndarray
    kernel: int


def maxpool2d(x: np.ndarray, kernel: int = 2) -> tuple[np.ndarray, _MaxPoolCache]:
    """Non-overlapping max pooling with ``stride == kernel``.

    Spatial extents must be divisible by the kernel (all models in the
    zoo are constructed to satisfy this).
    """
    n, c, h, w = x.shape
    if h % kernel or w % kernel:
        raise ValueError(
            f"spatial dims ({h}, {w}) not divisible by pool kernel {kernel}"
        )
    ph, pw = h // kernel, w // kernel
    tiles = x.reshape(n, c, ph, kernel, pw, kernel)
    tiles = tiles.transpose(0, 1, 2, 4, 3, 5).reshape(n, c, ph, pw, kernel * kernel)
    argmax = tiles.argmax(axis=-1)
    y = np.take_along_axis(tiles, argmax[..., None], axis=-1)[..., 0]
    return y, _MaxPoolCache(x_shape=x.shape, argmax=argmax, kernel=kernel)


def maxpool2d_backward(dout: np.ndarray, cache: _MaxPoolCache) -> np.ndarray:
    n, c, h, w = cache.x_shape
    kernel = cache.kernel
    ph, pw = h // kernel, w // kernel
    dtiles = np.zeros((n, c, ph, pw, kernel * kernel), dtype=dout.dtype)
    np.put_along_axis(dtiles, cache.argmax[..., None], dout[..., None], axis=-1)
    dtiles = dtiles.reshape(n, c, ph, pw, kernel, kernel)
    dx = dtiles.transpose(0, 1, 2, 4, 3, 5).reshape(n, c, h, w)
    return dx


def global_avgpool(x: np.ndarray) -> tuple[np.ndarray, tuple[int, ...]]:
    """Mean over spatial dims: (N, C, H, W) -> (N, C)."""
    return x.mean(axis=(2, 3)), x.shape


def global_avgpool_backward(dout: np.ndarray, x_shape: tuple[int, ...]) -> np.ndarray:
    n, c, h, w = x_shape
    scale = 1.0 / (h * w)
    return np.broadcast_to(
        dout[:, :, None, None] * scale, (n, c, h, w)
    ).copy()


def softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically stable softmax over the last axis."""
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


def cross_entropy(
    logits: np.ndarray, labels: np.ndarray
) -> tuple[float, np.ndarray]:
    """Mean cross-entropy loss and its gradient w.r.t. the logits.

    ``labels`` are integer class indices, shape (N,).
    """
    n = logits.shape[0]
    probs = softmax(logits)
    clipped = np.clip(probs[np.arange(n), labels], 1e-12, None)
    loss = float(-np.log(clipped).mean())
    dlogits = probs
    dlogits[np.arange(n), labels] -= 1.0
    dlogits /= n
    return loss, dlogits
