"""Network container: a classifier built from substrate layers.

Adds the conveniences the experiments need on top of
:class:`~repro.nn.layers.Sequential`: loss-coupled forward/backward,
parameter accounting (dense size / MACs, matching Table II's columns),
and measurement of per-layer activation densities for the architecture
model's weight-update phase.
"""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn.layers import Conv2d, Layer, Linear, Parameter, ReLU, Sequential

__all__ = ["Network"]


def _collect_layers(layer: Layer) -> list[Layer]:
    """Depth-first flat list of all sub-layers."""
    found = [layer]
    for attr in ("layers",):
        for child in getattr(layer, attr, []):
            found.extend(_collect_layers(child))
    for attr in ("body", "shortcut", "final_relu"):
        child = getattr(layer, attr, None)
        if isinstance(child, Layer):
            found.extend(_collect_layers(child))
    return found


class Network:
    """A classification network: layers plus a cross-entropy head."""

    def __init__(self, name: str, trunk: Sequential) -> None:
        self.name = name
        self.trunk = trunk
        first_conv = next(
            (
                layer
                for layer in self.all_layers()
                if isinstance(layer, Conv2d)
            ),
            None,
        )
        if first_conv is not None:
            first_conv.mark_first_layer()

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def all_layers(self) -> list[Layer]:
        return _collect_layers(self.trunk)

    def parameters(self) -> list[Parameter]:
        return self.trunk.parameters()

    def parameter_count(self) -> int:
        """Total trainable scalars (the paper's "dense size" column)."""
        return sum(p.size for p in self.parameters())

    def prunable_count(self) -> int:
        """Scalars subject to Dropback tracking (conv + fc weights)."""
        return sum(p.size for p in self.parameters() if p.prunable)

    def zero_grad(self) -> None:
        self.trunk.zero_grad()

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        return self.trunk.forward(x, training=training)

    def loss_and_grad(
        self, x: np.ndarray, labels: np.ndarray
    ) -> tuple[float, float]:
        """One training step's forward+backward; fills ``.grad``.

        Returns ``(loss, minibatch_accuracy)``.
        """
        logits = self.forward(x, training=True)
        loss, dlogits = F.cross_entropy(logits, labels)
        accuracy = float((logits.argmax(axis=1) == labels).mean())
        self.trunk.backward(dlogits)
        return loss, accuracy

    def evaluate(
        self, x: np.ndarray, labels: np.ndarray, batch_size: int = 256
    ) -> tuple[float, float]:
        """Inference-mode loss and accuracy over a dataset."""
        losses = []
        correct = 0
        for start in range(0, x.shape[0], batch_size):
            xb = x[start : start + batch_size]
            yb = labels[start : start + batch_size]
            logits = self.forward(xb, training=False)
            loss, _ = F.cross_entropy(logits, yb)
            losses.append(loss * xb.shape[0])
            correct += int((logits.argmax(axis=1) == yb).sum())
        n = x.shape[0]
        return sum(losses) / n, correct / n

    # ------------------------------------------------------------------
    # measurement hooks for the architecture model
    # ------------------------------------------------------------------
    def activation_densities(self) -> dict[str, float]:
        """Most recent post-ReLU densities, keyed by ReLU layer name.

        These are the input-activation densities the weight-update
        phase can exploit (Section II-B); feed them to
        :mod:`repro.workloads.sparsity` to drive the energy model with
        measured rather than assumed sparsity.
        """
        return {
            layer.name: layer.last_density
            for layer in self.all_layers()
            if isinstance(layer, ReLU) and layer.last_density is not None
        }

    def weight_shapes(self) -> dict[str, tuple[int, ...]]:
        """Shapes of all prunable tensors, keyed by parameter name."""
        return {
            p.name: p.shape for p in self.parameters() if p.prunable
        }

    def describe(self) -> str:
        """One-line-per-layer structural summary."""
        lines = [f"Network {self.name}: {self.parameter_count():,} params"]
        for layer in self.all_layers():
            if isinstance(layer, Conv2d):
                lines.append(
                    f"  conv {layer.name}: {layer.in_channels}->"
                    f"{layer.out_channels} k{layer.kernel} s{layer.stride} "
                    f"g{layer.groups}"
                )
            elif isinstance(layer, Linear):
                lines.append(
                    f"  fc {layer.name}: {layer.in_features}->"
                    f"{layer.out_features}"
                )
        return "\n".join(lines)
