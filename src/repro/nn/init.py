"""Weight initialization formulae.

The WR unit in Procrustes (Section V) regenerates initial weights from
a PRNG scaled to match "popular initialization formulae like Xavier or
Kaiming".  This module provides those scale computations for both the
software substrate (Gaussian draws from a seeded NumPy generator) and
the hardware model (:mod:`repro.hw.prng`), so both agree on variance.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "fan_in_fan_out",
    "xavier_std",
    "kaiming_std",
    "gaussian_init",
]


def fan_in_fan_out(shape: tuple[int, ...]) -> tuple[int, int]:
    """Fan-in/fan-out of a weight tensor.

    Linear weights are ``(out, in)``; conv weights are
    ``(K, C/groups, R, S)`` with receptive-field size folded in.
    """
    if len(shape) == 2:
        out_features, in_features = shape
        return in_features, out_features
    if len(shape) == 4:
        k, cg, r, s = shape
        receptive = r * s
        return cg * receptive, k * receptive
    raise ValueError(f"unsupported weight shape {shape}")


def xavier_std(shape: tuple[int, ...]) -> float:
    """Glorot normal standard deviation: sqrt(2 / (fan_in + fan_out))."""
    fan_in, fan_out = fan_in_fan_out(shape)
    return math.sqrt(2.0 / (fan_in + fan_out))


def kaiming_std(shape: tuple[int, ...]) -> float:
    """He normal standard deviation for ReLU nets: sqrt(2 / fan_in)."""
    fan_in, _ = fan_in_fan_out(shape)
    return math.sqrt(2.0 / fan_in)


def gaussian_init(
    shape: tuple[int, ...],
    rng: np.random.Generator,
    scheme: str = "kaiming",
) -> np.ndarray:
    """Draw an initial weight tensor ``W(0) ~ N(0, sigma)``.

    ``scheme`` is ``"kaiming"`` (default for the conv nets in the
    paper's zoo) or ``"xavier"``.
    """
    if scheme == "kaiming":
        std = kaiming_std(shape)
    elif scheme == "xavier":
        std = xavier_std(shape)
    else:
        raise ValueError(f"unknown init scheme {scheme!r}")
    return rng.normal(0.0, std, size=shape)
