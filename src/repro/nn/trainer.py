"""Training loop with the measurement hooks the experiments need.

Produces the validation-accuracy-versus-epoch curves of Figures 6, 7,
15 and 16, the achieved-sparsity column of Table II, and measured
activation densities for the architecture model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.nn.data import Dataset, minibatches
from repro.nn.model import Network

__all__ = ["TrainingHistory", "Trainer"]


@dataclass
class TrainingHistory:
    """Per-epoch training record."""

    epochs: list[int] = field(default_factory=list)
    train_loss: list[float] = field(default_factory=list)
    train_accuracy: list[float] = field(default_factory=list)
    val_accuracy: list[float] = field(default_factory=list)
    sparsity_factor: list[float] = field(default_factory=list)
    iterations: int = 0

    @property
    def final_val_accuracy(self) -> float:
        if not self.val_accuracy:
            raise ValueError("no epochs recorded")
        return self.val_accuracy[-1]

    @property
    def best_val_accuracy(self) -> float:
        if not self.val_accuracy:
            raise ValueError("no epochs recorded")
        return max(self.val_accuracy)

    def epochs_to_reach(self, accuracy: float) -> int | None:
        """First epoch whose validation accuracy meets the target."""
        for epoch, acc in zip(self.epochs, self.val_accuracy):
            if acc >= accuracy:
                return epoch
        return None


class Trainer:
    """Runs epochs of minibatch training and records history.

    The optimizer is any object with a ``step()`` method consuming the
    ``.grad`` fields (``repro.nn.optim.SGD`` or
    ``repro.core.DropbackOptimizer``).

    ``on_epoch_end`` is called after each epoch's evaluation with
    ``(trainer, epoch)`` (epoch 1-based, matching the history) — the
    hook :mod:`repro.campaign` uses to snapshot masks and activation
    densities along the training trajectory.
    """

    def __init__(
        self,
        model: Network,
        optimizer,
        train: Dataset,
        val: Dataset,
        batch_size: int = 32,
        seed: int = 0,
        on_epoch_end: Callable[["Trainer", int], None] | None = None,
    ) -> None:
        self.model = model
        self.optimizer = optimizer
        self.train_set = train
        self.val_set = val
        self.batch_size = batch_size
        self._rng = np.random.default_rng(seed)
        self.history = TrainingHistory()
        self.on_epoch_end = on_epoch_end
        #: mean post-ReLU densities observed during the last epoch,
        #: keyed by layer name — input to the wu-phase sparsity model.
        self.activation_densities: dict[str, list[float]] = {}

    def run(self, epochs: int) -> TrainingHistory:
        """Train for ``epochs`` epochs, evaluating after each."""
        for _ in range(epochs):
            self._run_epoch()
        return self.history

    def _run_epoch(self) -> None:
        losses: list[float] = []
        accs: list[float] = []
        for images, labels in minibatches(
            self.train_set, self.batch_size, self._rng
        ):
            self.model.zero_grad()
            loss, acc = self.model.loss_and_grad(images, labels)
            self.optimizer.step()
            losses.append(loss)
            accs.append(acc)
            self.history.iterations += 1
            self._record_densities()
        _, val_acc = self.model.evaluate(
            self.val_set.images, self.val_set.labels
        )
        epoch = len(self.history.epochs) + 1
        self.history.epochs.append(epoch)
        self.history.train_loss.append(float(np.mean(losses)))
        self.history.train_accuracy.append(float(np.mean(accs)))
        self.history.val_accuracy.append(val_acc)
        sparsity = getattr(self.optimizer, "achieved_sparsity_factor", None)
        self.history.sparsity_factor.append(
            float(sparsity()) if callable(sparsity) else 1.0
        )
        if self.on_epoch_end is not None:
            self.on_epoch_end(self, epoch)

    def _record_densities(self) -> None:
        for name, density in self.model.activation_densities().items():
            self.activation_densities.setdefault(name, []).append(density)

    def mean_activation_densities(self) -> dict[str, float]:
        """Average observed post-ReLU density per layer."""
        return {
            name: float(np.mean(values))
            for name, values in self.activation_densities.items()
        }
