"""Layer classes for the training substrate.

Each layer owns its :class:`Parameter` objects, caches what its
backward pass needs during ``forward``, and implements ``backward``
returning the gradient with respect to its input while filling
``param.grad``.  There is no autograd tape — the composition rules of
the five paper networks (sequential, residual add, dense concat) are
expressed as composite layers, which keeps the substrate small and
makes every gradient path explicit and testable.
"""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn.init import gaussian_init

__all__ = [
    "Parameter",
    "Layer",
    "Conv2d",
    "Linear",
    "BatchNorm2d",
    "ReLU",
    "MaxPool2d",
    "GlobalAvgPool",
    "Flatten",
    "Sequential",
    "Residual",
    "Concat",
]


class Parameter:
    """A named trainable tensor.

    ``prunable`` marks tensors that participate in Dropback tracking
    (conv and fc weights); biases and batch-norm affine parameters are
    dense, matching the paper's setup.
    """

    def __init__(self, name: str, data: np.ndarray, prunable: bool = False) -> None:
        self.name = name
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: np.ndarray | None = None
        self.prunable = prunable

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def size(self) -> int:
        return int(self.data.size)

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        tag = "prunable" if self.prunable else "dense"
        return f"Parameter({self.name!r}, shape={self.shape}, {tag})"


class Layer:
    """Base class: a differentiable module with explicit state."""

    def parameters(self) -> list[Parameter]:
        """All trainable parameters, depth-first."""
        return []

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        raise NotImplementedError

    def backward(self, dout: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def __call__(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        return self.forward(x, training=training)


class Conv2d(Layer):
    """2-D convolution with optional grouping (depthwise for MobileNet)."""

    def __init__(
        self,
        name: str,
        in_channels: int,
        out_channels: int,
        kernel: int = 3,
        stride: int = 1,
        padding: int = 1,
        groups: int = 1,
        bias: bool = False,
        rng: np.random.Generator | None = None,
        init_scheme: str = "kaiming",
    ) -> None:
        if in_channels % groups or out_channels % groups:
            raise ValueError(
                f"channels ({in_channels}, {out_channels}) must divide "
                f"groups {groups}"
            )
        rng = rng or np.random.default_rng(0)
        self.name = name
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel = kernel
        self.stride = stride
        self.padding = padding
        self.groups = groups
        shape = (out_channels, in_channels // groups, kernel, kernel)
        self.weight = Parameter(
            f"{name}.weight",
            gaussian_init(shape, rng, scheme=init_scheme),
            prunable=True,
        )
        self.bias = (
            Parameter(f"{name}.bias", np.zeros(out_channels)) if bias else None
        )
        self._cache = None
        self._needs_dx = True

    def parameters(self) -> list[Parameter]:
        params = [self.weight]
        if self.bias is not None:
            params.append(self.bias)
        return params

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        bias = self.bias.data if self.bias is not None else None
        y, cache = F.conv2d(
            x,
            self.weight.data,
            bias,
            stride=self.stride,
            padding=self.padding,
            groups=self.groups,
        )
        self._cache = cache if training else None
        return y

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError(f"{self.name}: backward before forward")
        dx, dweight, dbias = F.conv2d_backward(
            dout, self._cache, need_dx=self._needs_dx
        )
        self.weight.grad = dweight
        if self.bias is not None:
            self.bias.grad = dbias
        self._cache = None
        return dx if dx is not None else np.zeros(0)

    def mark_first_layer(self) -> None:
        """Skip the input gradient (no layer upstream needs it)."""
        self._needs_dx = False


class Linear(Layer):
    """Fully-connected layer."""

    def __init__(
        self,
        name: str,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: np.random.Generator | None = None,
        init_scheme: str = "kaiming",
    ) -> None:
        rng = rng or np.random.default_rng(0)
        self.name = name
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            f"{name}.weight",
            gaussian_init((out_features, in_features), rng, scheme=init_scheme),
            prunable=True,
        )
        self.bias = (
            Parameter(f"{name}.bias", np.zeros(out_features)) if bias else None
        )
        self._cache = None

    def parameters(self) -> list[Parameter]:
        params = [self.weight]
        if self.bias is not None:
            params.append(self.bias)
        return params

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        bias = self.bias.data if self.bias is not None else None
        y, cache = F.linear(x, self.weight.data, bias)
        self._cache = cache if training else None
        return y

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError(f"{self.name}: backward before forward")
        dx, dweight, dbias = F.linear_backward(
            dout, self.weight.data, self._cache
        )
        self.weight.grad = dweight
        if self.bias is not None:
            self.bias.grad = dbias
        self._cache = None
        return dx


class BatchNorm2d(Layer):
    """Batch normalization with running statistics."""

    def __init__(self, name: str, channels: int, momentum: float = 0.1) -> None:
        self.name = name
        self.channels = channels
        self.momentum = momentum
        self.gamma = Parameter(f"{name}.gamma", np.ones(channels))
        self.beta = Parameter(f"{name}.beta", np.zeros(channels))
        self.running_mean = np.zeros(channels)
        self.running_var = np.ones(channels)
        self._cache = None

    def parameters(self) -> list[Parameter]:
        return [self.gamma, self.beta]

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        y, cache = F.batchnorm2d(
            x,
            self.gamma.data,
            self.beta.data,
            self.running_mean,
            self.running_var,
            training=training,
            momentum=self.momentum,
        )
        self._cache = cache
        return y

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError(f"{self.name}: backward before forward")
        dx, dgamma, dbeta = F.batchnorm2d_backward(dout, self._cache)
        self.gamma.grad = dgamma
        self.beta.grad = dbeta
        self._cache = None
        return dx


class ReLU(Layer):
    """ReLU; records output density for the activation-sparsity model."""

    def __init__(self, name: str = "relu") -> None:
        self.name = name
        self.last_density: float | None = None
        self._mask = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        y, mask = F.relu(x)
        self.last_density = float(mask.mean())
        self._mask = mask if training else None
        return y

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError(f"{self.name}: backward before forward")
        dx = F.relu_backward(dout, self._mask)
        self._mask = None
        return dx


class MaxPool2d(Layer):
    def __init__(self, name: str = "pool", kernel: int = 2) -> None:
        self.name = name
        self.kernel = kernel
        self._cache = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        y, cache = F.maxpool2d(x, kernel=self.kernel)
        self._cache = cache if training else None
        return y

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError(f"{self.name}: backward before forward")
        dx = F.maxpool2d_backward(dout, self._cache)
        self._cache = None
        return dx


class GlobalAvgPool(Layer):
    def __init__(self, name: str = "gap") -> None:
        self.name = name
        self._shape = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        y, shape = F.global_avgpool(x)
        self._shape = shape
        return y

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError(f"{self.name}: backward before forward")
        dx = F.global_avgpool_backward(dout, self._shape)
        self._shape = None
        return dx


class Flatten(Layer):
    def __init__(self, name: str = "flatten") -> None:
        self.name = name
        self._shape = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError(f"{self.name}: backward before forward")
        dx = dout.reshape(self._shape)
        self._shape = None
        return dx


class Sequential(Layer):
    """Chain of layers, evaluated in order."""

    def __init__(self, layers: list[Layer], name: str = "seq") -> None:
        self.name = name
        self.layers = list(layers)

    def parameters(self) -> list[Parameter]:
        params: list[Parameter] = []
        for layer in self.layers:
            params.extend(layer.parameters())
        return params

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x, training=training)
        return x

    def backward(self, dout: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            dout = layer.backward(dout)
        return dout


class Residual(Layer):
    """``y = relu(body(x) + shortcut(x))`` — the ResNet/WRN building block.

    ``shortcut`` is identity when ``None``; otherwise a (projection)
    layer applied to the skip path.
    """

    def __init__(
        self,
        body: Layer,
        shortcut: Layer | None = None,
        name: str = "res",
        final_relu: bool = True,
    ) -> None:
        self.name = name
        self.body = body
        self.shortcut = shortcut
        self.final_relu = ReLU(f"{name}.relu") if final_relu else None

    def parameters(self) -> list[Parameter]:
        params = self.body.parameters()
        if self.shortcut is not None:
            params.extend(self.shortcut.parameters())
        return params

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        main = self.body.forward(x, training=training)
        skip = (
            self.shortcut.forward(x, training=training)
            if self.shortcut is not None
            else x
        )
        y = main + skip
        if self.final_relu is not None:
            y = self.final_relu.forward(y, training=training)
        return y

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self.final_relu is not None:
            dout = self.final_relu.backward(dout)
        dmain = self.body.backward(dout)
        dskip = (
            self.shortcut.backward(dout) if self.shortcut is not None else dout
        )
        return dmain + dskip


class Concat(Layer):
    """``y = concat([x, body(x)], channel_axis)`` — DenseNet's growth step."""

    def __init__(self, body: Layer, name: str = "dense") -> None:
        self.name = name
        self.body = body
        self._in_channels = None

    def parameters(self) -> list[Parameter]:
        return self.body.parameters()

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        self._in_channels = x.shape[1]
        new = self.body.forward(x, training=training)
        return np.concatenate([x, new], axis=1)

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._in_channels is None:
            raise RuntimeError(f"{self.name}: backward before forward")
        c = self._in_channels
        dx_passthrough = dout[:, :c]
        dnew = dout[:, c:]
        dx_body = self.body.backward(dnew)
        self._in_channels = None
        return dx_passthrough + dx_body
