"""Machine-readable experiment exports (CSV + JSON).

Every harness experiment can persist its result as a canonical record:
a JSON document carrying the experiment id, the parameters that
produced it, and one or more named data series — plus flat CSV files
for spreadsheet-style consumption.  :class:`ResultsDirectory` manages
the on-disk layout (one subdirectory per experiment id).
"""

from __future__ import annotations

import csv
import json
from dataclasses import asdict, is_dataclass
from pathlib import Path
from typing import Any, Mapping, Sequence

import numpy as np

__all__ = [
    "write_csv",
    "write_json",
    "experiment_record",
    "ResultsDirectory",
]


def _jsonable(value: Any) -> Any:
    """Coerce numpy scalars/arrays and dataclasses to JSON-safe types."""
    if isinstance(value, np.ndarray):
        return [_jsonable(v) for v in value.tolist()]
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    if is_dataclass(value) and not isinstance(value, type):
        return {k: _jsonable(v) for k, v in asdict(value).items()}
    if isinstance(value, Mapping):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


def write_csv(
    path: str | Path,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
) -> Path:
    """Write a table to CSV; returns the path written."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(list(headers))
        for row in rows:
            if len(row) != len(headers):
                raise ValueError(
                    f"row width {len(row)} != header width {len(headers)}"
                )
            writer.writerow([_jsonable(v) for v in row])
    return target


def write_json(path: str | Path, payload: Any) -> Path:
    """Write any JSON-able payload (numpy/dataclasses coerced)."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(_jsonable(payload), indent=2) + "\n")
    return target


def experiment_record(
    experiment_id: str,
    params: Mapping[str, object],
    series: Mapping[str, object],
    notes: str = "",
) -> dict[str, Any]:
    """Canonical payload for one regenerated table/figure."""
    if not experiment_id:
        raise ValueError("experiment_id must be non-empty")
    return {
        "experiment": experiment_id,
        "params": _jsonable(dict(params)),
        "series": _jsonable(dict(series)),
        "notes": notes,
    }


class ResultsDirectory:
    """On-disk layout: ``<root>/<experiment_id>/record.json`` + CSVs."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    def path_for(self, experiment_id: str, filename: str) -> Path:
        safe = experiment_id.replace("/", "_")
        return self.root / safe / filename

    def save_record(self, record: Mapping[str, Any]) -> Path:
        """Persist an :func:`experiment_record` payload."""
        experiment_id = str(record.get("experiment", ""))
        if not experiment_id:
            raise ValueError("record is missing its 'experiment' id")
        return write_json(self.path_for(experiment_id, "record.json"), record)

    def save_table(
        self,
        experiment_id: str,
        name: str,
        headers: Sequence[str],
        rows: Sequence[Sequence[object]],
    ) -> Path:
        return write_csv(
            self.path_for(experiment_id, f"{name}.csv"), headers, rows
        )

    def load_record(self, experiment_id: str) -> dict[str, Any]:
        path = self.path_for(experiment_id, "record.json")
        return json.loads(path.read_text())

    def list_experiments(self) -> list[str]:
        if not self.root.exists():
            return []
        return sorted(
            p.name for p in self.root.iterdir()
            if (p / "record.json").exists()
        )
