"""Result rendering and export: ASCII plots, CSV/JSON writers."""

from repro.report.ascii_plot import (
    bar_chart,
    grouped_bars,
    histogram,
    line_plot,
    scatter_plot,
    sparkline,
)
from repro.report.export import (
    ResultsDirectory,
    experiment_record,
    write_csv,
    write_json,
)

__all__ = [
    "bar_chart",
    "grouped_bars",
    "histogram",
    "line_plot",
    "scatter_plot",
    "sparkline",
    "ResultsDirectory",
    "experiment_record",
    "write_csv",
    "write_json",
]
