"""Plain-text charts for terminal-rendered experiment output.

The harness regenerates the paper's figures as data; these helpers
make the shapes visible without matplotlib (offline environment):
bar charts for the energy breakdowns (Figs 1/17/18), histograms for
the imbalance distributions (Figs 5/13), line plots for the
accuracy-over-epoch curves (Figs 6/7/15/16), and scatter plots for
the design-space explorer's objective clouds and Pareto frontiers.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = [
    "bar_chart",
    "histogram",
    "line_plot",
    "grouped_bars",
    "scatter_plot",
    "sparkline",
]

_BLOCKS = " ▁▂▃▄▅▆▇█"


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 50,
    title: str | None = None,
    unit: str = "",
) -> str:
    """Horizontal bar chart; bars scale to the maximum value."""
    if len(labels) != len(values):
        raise ValueError(
            f"labels ({len(labels)}) and values ({len(values)}) differ"
        )
    if width < 1:
        raise ValueError("width must be >= 1")
    lines: list[str] = [title] if title else []
    if not values:
        return "\n".join(lines + ["(no data)"])
    peak = max(max(values), 1e-300)
    label_w = max(len(s) for s in labels)
    for label, value in zip(labels, values):
        if value < 0:
            raise ValueError(f"bar values must be >= 0 (got {value})")
        n = int(round(width * value / peak))
        lines.append(
            f"{label:<{label_w}} |{'█' * n:<{width}}| {value:g}{unit}"
        )
    return "\n".join(lines)


def histogram(
    fractions: Mapping[float, float],
    width: int = 40,
    title: str | None = None,
) -> str:
    """Paper-style binned histogram (bin center -> fraction)."""
    labels = [f"{center:7.1%}" for center in fractions]
    values = [max(0.0, f) for f in fractions.values()]
    chart = bar_chart(labels, values, width=width, title=title)
    # Re-render values as percentages.
    out = []
    for line, frac in zip(
        chart.splitlines()[1 if title else 0 :], fractions.values()
    ):
        head, _, _ = line.rpartition("| ")
        out.append(f"{head}| {frac:.1%}")
    prefix = [title] if title else []
    return "\n".join(prefix + out)


def line_plot(
    series: Mapping[str, Sequence[float]],
    width: int = 68,
    height: int = 14,
    title: str | None = None,
    y_range: tuple[float, float] | None = None,
) -> str:
    """Multi-series character line plot (one glyph per series).

    X is the sample index rescaled to ``width``; Y spans ``y_range``
    (defaults to the data's min/max).  Used for the accuracy curves.
    """
    if width < 2 or height < 2:
        raise ValueError("width and height must be >= 2")
    if not series:
        return title or "(no data)"
    glyphs = "ox+*#@%&"
    all_values = [v for vs in series.values() for v in vs]
    if not all_values:
        return title or "(no data)"
    lo, hi = y_range if y_range else (min(all_values), max(all_values))
    if hi <= lo:
        hi = lo + 1e-9
    grid = [[" "] * width for _ in range(height)]
    for (name, values), glyph in zip(series.items(), glyphs):
        n = len(values)
        if n == 0:
            continue
        for i, v in enumerate(values):
            x = int(round((width - 1) * (i / max(1, n - 1))))
            frac = (v - lo) / (hi - lo)
            frac = min(1.0, max(0.0, frac))
            y = height - 1 - int(round((height - 1) * frac))
            grid[y][x] = glyph
    lines: list[str] = [title] if title else []
    lines.append(f"{hi:8.3f} ┤" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 8 + " │" + "".join(row))
    lines.append(f"{lo:8.3f} ┤" + "".join(grid[-1]))
    legend = "   ".join(
        f"{glyph}={name}" for (name, _), glyph in zip(series.items(), glyphs)
    )
    lines.append(" " * 10 + legend)
    return "\n".join(lines)


def grouped_bars(
    groups: Mapping[str, Mapping[str, float]],
    width: int = 40,
    title: str | None = None,
    unit: str = "",
) -> str:
    """Grouped horizontal bars: {group: {series: value}}.

    Renders the Figure 17-style layout — one block per group, one bar
    per series, all scaled to the global maximum so groups compare.
    """
    lines: list[str] = [title] if title else []
    all_values = [v for g in groups.values() for v in g.values()]
    if not all_values:
        return "\n".join(lines + ["(no data)"])
    peak = max(max(all_values), 1e-300)
    series_w = max(
        (len(s) for g in groups.values() for s in g), default=1
    )
    for group, bars in groups.items():
        lines.append(f"{group}:")
        for name, value in bars.items():
            if value < 0:
                raise ValueError(f"bar values must be >= 0 (got {value})")
            n = int(round(width * value / peak))
            lines.append(
                f"  {name:<{series_w}} |{'█' * n:<{width}}| {value:g}{unit}"
            )
    return "\n".join(lines)


def scatter_plot(
    series: Mapping[str, tuple[Sequence[float], Sequence[float]]],
    width: int = 64,
    height: int = 16,
    title: str | None = None,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Multi-series character scatter plot (one glyph per series).

    ``series`` maps a name to an ``(xs, ys)`` pair.  Later series
    overdraw earlier ones, so put the emphasis series (e.g. the Pareto
    frontier over the full candidate cloud) last.  Axis ranges span
    the union of all series; the explorer uses this for its
    objective-vs-objective frontier views.
    """
    if width < 2 or height < 2:
        raise ValueError("width and height must be >= 2")
    glyphs = "·o*#@+x%"
    pairs = list(series.items())
    for name, (xs, ys) in pairs:
        if len(xs) != len(ys):
            raise ValueError(
                f"series {name!r}: {len(xs)} x values vs {len(ys)} y values"
            )
    all_x = [x for _, (xs, _) in pairs for x in xs]
    all_y = [y for _, (_, ys) in pairs for y in ys]
    if not all_x:
        return title or "(no data)"
    x_lo, x_hi = min(all_x), max(all_x)
    y_lo, y_hi = min(all_y), max(all_y)
    x_span = (x_hi - x_lo) or 1e-9
    y_span = (y_hi - y_lo) or 1e-9
    grid = [[" "] * width for _ in range(height)]
    for i, (name, (xs, ys)) in enumerate(pairs):
        glyph = glyphs[i % len(glyphs)]
        for x, y in zip(xs, ys):
            col = int(round((width - 1) * (x - x_lo) / x_span))
            row = height - 1 - int(round((height - 1) * (y - y_lo) / y_span))
            grid[row][col] = glyph
    lines: list[str] = [title] if title else []
    lines.append(f"{y_hi:10.3g} ┤" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 10 + " │" + "".join(row))
    lines.append(f"{y_lo:10.3g} ┤" + "".join(grid[-1]))
    lines.append(
        " " * 12 + f"{x_lo:<10.3g}" + x_label.center(width - 20)
        + f"{x_hi:>10.3g}"
    )
    if y_label:
        lines.append(" " * 12 + f"(y: {y_label})")
    legend = "   ".join(
        f"{glyphs[i % len(glyphs)]}={name}"
        for i, (name, _) in enumerate(pairs)
    )
    lines.append(" " * 12 + legend)
    return "\n".join(lines)


def sparkline(values: Sequence[float]) -> str:
    """One-line trend strip (eight-level block glyphs)."""
    if not values:
        return ""
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1e-9
    levels = len(_BLOCKS) - 1
    return "".join(
        _BLOCKS[1 + int(round((levels - 1) * (v - lo) / span))]
        for v in values
    )
