"""Job bookkeeping for the evaluation service.

A :class:`Job` is one unique in-flight request: the first submission of
a digest creates it, every identical submission while it is in flight
*attaches* to it (the dedup seam — one computation, many subscribers),
and completion resolves one shared future plus a ``result`` frame per
subscriber.  The :class:`JobTable` owns the digest -> job map and the
service-level counters; :class:`ServeStats` aggregates the per-call
cache/reliability deltas that pool workers ship back, which is how the
server reports true hit rates across processes instead of only its own.

Everything here is mutated from the server's event-loop thread only, so
no locking is needed (the table is handed results by coroutines, never
by pool threads directly).
"""

from __future__ import annotations

import asyncio
import itertools
from dataclasses import dataclass, field
from typing import Any, Awaitable, Callable, Mapping

from repro.api.envelope import EvalRequest, EvalResult, JobStatus
from repro.obs.metrics import MetricsRegistry
from repro.sweep.cache import CacheStats

__all__ = ["Job", "JobTable", "ServeStats"]

#: A job subscriber: receives every protocol frame for the job (status
#: events and the terminal result).  May be sync or async.
Subscriber = Callable[[dict], "Awaitable[None] | None"]


@dataclass
class Job:
    """One unique in-flight request and its subscribers."""

    job_id: str
    request: EvalRequest
    digest: str
    future: asyncio.Future
    state: str = "queued"
    subscribers: list[Subscriber] = field(default_factory=list)
    #: The server-side ``serve.job`` trace span (a
    #: :class:`repro.obs.trace.Span` into the server's own buffer), or
    #: ``None`` when the server's config has tracing off.
    span: Any = None

    def status(
        self, queue_depth: int | None = None, detail: str | None = None
    ) -> JobStatus:
        return JobStatus(
            job_id=self.job_id,
            state=self.state,
            request_digest=self.digest,
            queue_depth=queue_depth,
            detail=detail,
        )

    async def notify(self, frame: Mapping[str, Any]) -> None:
        """Deliver one frame to every subscriber (a dead subscriber —
        e.g. a disconnected client — never takes the job down)."""
        for subscriber in list(self.subscribers):
            try:
                outcome = subscriber(dict(frame))
                if outcome is not None:
                    await outcome
            except Exception:
                self.subscribers.remove(subscriber)


class JobTable:
    """Digest -> in-flight job map plus the service job counters.

    ``submitted`` counts every submission (duplicates included);
    ``evaluated`` counts results that were actually computed
    (``cached=False``); the gap between them — duplicates absorbed by
    in-flight dedup or answered from a cache tier — is what
    :meth:`duplicate_hit_rate` reports.
    """

    def __init__(self) -> None:
        self._in_flight: dict[str, Job] = {}
        self._ids = itertools.count(1)
        self._digests_seen: set[str] = set()
        self.submitted = 0
        self.completed = 0
        self.failed = 0
        self.evaluated = 0
        self.cache_hits = 0
        self.dedup_in_flight = 0

    def submit(
        self, request: EvalRequest, loop: asyncio.AbstractEventLoop
    ) -> tuple[Job, bool]:
        """Register one submission; returns ``(job, created)``.

        ``created=False`` means an identical request is already in
        flight and this submission attached to it — the caller must not
        enqueue the job a second time.
        """
        self.submitted += 1
        digest = request.digest()
        self._digests_seen.add(digest)
        job = self._in_flight.get(digest)
        if job is not None:
            self.dedup_in_flight += 1
            return job, False
        job = Job(
            job_id=f"job-{next(self._ids)}",
            request=request,
            digest=digest,
            future=loop.create_future(),
        )
        self._in_flight[digest] = job
        return job, True

    def finish(self, job: Job, result: EvalResult) -> None:
        """Record a terminal result and resolve the job's future."""
        self._in_flight.pop(job.digest, None)
        job.state = "done" if result.ok else "failed"
        if result.ok:
            self.completed += 1
        else:
            self.failed += 1
        if result.cached:
            self.cache_hits += 1
        else:
            self.evaluated += 1
        if not job.future.done():
            job.future.set_result(result)

    @property
    def in_flight(self) -> int:
        return len(self._in_flight)

    def pending_jobs(self) -> list[Job]:
        """Every job not yet finished (forced-shutdown bookkeeping)."""
        return list(self._in_flight.values())

    @property
    def unique(self) -> int:
        return len(self._digests_seen)

    def duplicate_hit_rate(self) -> float:
        """Fraction of *duplicate* submissions served without a fresh
        evaluation — the acceptance metric for the service.

        ``submitted - evaluated`` submissions were answered by some
        reuse tier (in-flight dedup, result cache); at most
        ``submitted - unique`` of them were duplicates.  1.0 when no
        duplicates were ever submitted (nothing to get wrong), and
        clamped at 1.0 when even unique requests came from a warm
        cache.
        """
        duplicates = self.submitted - self.unique
        if duplicates <= 0:
            return 1.0
        return min(1.0, (self.submitted - self.evaluated) / duplicates)

    def counters(self) -> dict[str, int]:
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "evaluated": self.evaluated,
            "in_flight": self.in_flight,
        }


class ServeStats:
    """Cross-process aggregation of worker-reported accounting.

    Each pool-worker call returns per-call deltas (sweep
    :class:`CacheStats` counters, evalcore memo counters, sweep
    reliability counters); the server merges them here so ``/stats``
    reflects every process's cache traffic, not just the parent's.
    The trajectory tier is observed opportunistically from
    ``trajectory_cached`` flags in campaign-evaluator values.
    """

    def __init__(self) -> None:
        self.sweep = CacheStats()
        self.evalcore: dict[str, int] = {}
        self.trajectory = {"hits": 0, "misses": 0}
        self.reliability: dict[str, int] = {}
        self.worker_crashes = 0
        self.requeues = 0
        #: Server-lifetime :mod:`repro.obs.metrics` aggregate: the
        #: server's own ``serve.*`` counters plus every worker call's
        #: shipped registry delta, merged by the same protocol the
        #: cache stats use.
        self.metrics = MetricsRegistry()

    def absorb(self, accounting: Mapping[str, Any]) -> None:
        """Merge one worker call's accounting payload."""
        self.sweep.merge(accounting.get("sweep_cache", {}))
        for key, value in (accounting.get("evalcore") or {}).items():
            self.evalcore[key] = self.evalcore.get(key, 0) + int(value)
        for key, value in (accounting.get("reliability") or {}).items():
            self.reliability[key] = self.reliability.get(key, 0) + int(value)
        worker_metrics = accounting.get("metrics")
        if worker_metrics:
            self.metrics.merge(worker_metrics)

    def observe_values(self, values: Mapping[str, Any] | None) -> None:
        """Derive trajectory-tier traffic from evaluator values."""
        if not isinstance(values, Mapping):
            return
        flag = values.get("trajectory_cached")
        if flag is True:
            self.trajectory["hits"] += 1
        elif flag is False:
            self.trajectory["misses"] += 1

    def cache_payload(self) -> dict[str, Any]:
        sweep = self.sweep.as_dict()
        sweep["hit_rate"] = self.sweep.hit_rate()
        return {
            "sweep": sweep,
            "evalcore": dict(self.evalcore),
            "trajectory": dict(self.trajectory),
        }

    def metrics_payload(self) -> dict[str, Any]:
        """The merged counters/gauges/histograms for ``/stats``
        (``{}`` when nothing was ever counted)."""
        return self.metrics.as_dict()

    def reliability_payload(self) -> dict[str, int]:
        payload = dict(self.reliability)
        payload["serve_worker_crashes"] = self.worker_crashes
        payload["serve_requeues"] = self.requeues
        return payload
