"""Clients for the evaluation service.

:class:`Client` speaks the JSON-lines protocol over the server's Unix
socket from any process; :class:`InProcessClient` presents the same
surface over a :class:`~repro.serve.server.Server` living in the same
process (tests, notebooks, the CLI's ``serve`` command itself).  Both
return the typed :class:`~repro.api.envelope.EvalResult` — never raw
frames — so swapping one for the other changes nothing downstream.
"""

from __future__ import annotations

import json
import os
import socket
import time
from typing import Any, Callable

from repro.api.envelope import EvalRequest, EvalResult, JobStatus
from repro.serve import protocol

__all__ = ["Client", "InProcessClient", "ServeError", "wait_for_server"]


class ServeError(RuntimeError):
    """The server answered a request with an ``error`` frame."""


def wait_for_server(
    socket_path: str | os.PathLike, timeout: float = 10.0
) -> None:
    """Block until a server accepts connections on ``socket_path``
    (startup polling for scripts and CI); raises ``TimeoutError``."""
    deadline = time.monotonic() + timeout
    while True:
        probe = socket.socket(socket.AF_UNIX)
        probe.settimeout(0.2)
        try:
            probe.connect(str(socket_path))
            return
        except OSError:
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"no server on {socket_path} after {timeout}s"
                ) from None
            time.sleep(0.05)
        finally:
            probe.close()


class Client:
    """A synchronous socket client (one connection, sequential requests).

    ``timeout`` bounds each protocol read; ``None`` (the default)
    blocks until the server answers — evaluations can be long.  The
    client is a context manager; it is *not* thread-safe (use one per
    thread, the server handles any number of connections).
    """

    def __init__(
        self,
        socket_path: str | os.PathLike,
        timeout: float | None = None,
        connect_timeout: float = 10.0,
    ) -> None:
        self.socket_path = str(socket_path)
        wait_for_server(self.socket_path, timeout=connect_timeout)
        self._socket = socket.socket(socket.AF_UNIX)
        self._socket.connect(self.socket_path)
        self._socket.settimeout(timeout)
        self._reader = self._socket.makefile("rb")
        self._tags = 0

    # ------------------------------------------------------------------
    # protocol plumbing
    # ------------------------------------------------------------------
    def _next_tag(self) -> str:
        self._tags += 1
        return f"c{self._tags}"

    def _send(self, frame: dict[str, Any]) -> None:
        self._socket.sendall(protocol.encode(frame))

    def _read_frame(self) -> dict[str, Any]:
        line = self._reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return protocol.decode(line)

    def _frames_for(self, tag: str):
        """Frames answering ``tag`` (frames for other tags are skipped —
        this client is sequential, so there are none in practice)."""
        while True:
            frame = self._read_frame()
            if frame.get("id") in (tag, None):
                yield frame

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def submit(
        self,
        request: EvalRequest,
        on_status: Callable[[JobStatus], None] | None = None,
    ) -> EvalResult:
        """Submit one request; blocks until its terminal result.

        ``on_status`` receives each streamed :class:`JobStatus`
        (``queued``, ``running``) as the job progresses.
        """
        tag = self._next_tag()
        self._send({"op": "submit", "id": tag, "request": request.to_wire()})
        for frame in self._frames_for(tag):
            op = frame.get("op")
            if op == "status":
                if on_status is not None:
                    on_status(JobStatus.from_wire(frame.get("status", {})))
            elif op == "result":
                return EvalResult.from_wire(frame.get("result", {}))
            elif op == "error":
                raise ServeError(str(frame.get("error", "unknown error")))
            # anything else: an op from a newer server — ignore.

    def stats(self) -> dict[str, Any]:
        """The server's ``/stats`` payload."""
        tag = self._next_tag()
        self._send({"op": "stats", "id": tag})
        for frame in self._frames_for(tag):
            op = frame.get("op")
            if op == "stats":
                return frame.get("stats", {})
            if op == "error":
                raise ServeError(str(frame.get("error", "unknown error")))

    def shutdown(self, drain: bool = True) -> None:
        """Ask the server to stop (``drain=True`` finishes in-flight
        jobs first); tolerates the server vanishing mid-handshake."""
        tag = self._next_tag()
        try:
            self._send({"op": "shutdown", "id": tag, "drain": drain})
            for frame in self._frames_for(tag):
                if frame.get("op") in ("ok", "error"):
                    return
        except (ConnectionError, OSError, json.JSONDecodeError):
            return

    def close(self) -> None:
        try:
            self._reader.close()
        except OSError:
            pass
        try:
            self._socket.close()
        except OSError:
            pass

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class InProcessClient:
    """The same client surface over an in-process server (no socket)."""

    def __init__(self, server) -> None:
        self._server = server

    def submit(
        self,
        request: EvalRequest,
        on_status: Callable[[JobStatus], None] | None = None,
    ) -> EvalResult:
        return self._server.submit(request, on_status=on_status)

    def stats(self) -> dict[str, Any]:
        return self._server.stats()

    def shutdown(self, drain: bool = True) -> None:
        self._server.stop(drain=drain)

    def close(self) -> None:
        pass

    def __enter__(self) -> "InProcessClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
