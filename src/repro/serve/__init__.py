"""repro.serve — the concurrent design-evaluation service.

One long-running :class:`Server` answers many clients over a
Unix-domain socket (JSON-lines protocol, :mod:`repro.serve.protocol`)
with the typed :mod:`repro.api.envelope` request/result schema:
submissions are content-hashed, deduplicated onto in-flight
computations, grouped through the sweep engine's batched executor,
answered from the tiered caches under the cache root, and streamed
back as status events plus one terminal result — bit-identical to a
direct ``repro.api.evaluate()`` of the same request.

Quickstart::

    from repro.api import RuntimeConfig, experiment_request
    from repro.serve import Client, Server

    with Server(RuntimeConfig(cache_root="/tmp/cache")) as server:
        with Client(server.socket_path) as client:
            result = client.submit(experiment_request("table1"))
            print(result.values, client.stats()["dedup"])

or from the command line::

    python -m repro.harness serve --socket /tmp/repro.sock &
    python -m repro.harness submit table1 --socket /tmp/repro.sock

See ``docs/serve.md`` for the protocol, dedup semantics, and the
``/stats`` schema.
"""

from repro.serve.client import (
    Client,
    InProcessClient,
    ServeError,
    wait_for_server,
)
from repro.serve.server import Server

__all__ = [
    "Client",
    "InProcessClient",
    "ServeError",
    "Server",
    "wait_for_server",
]
