"""The repro.serve wire protocol: JSON lines over a Unix socket.

Each frame is one JSON object on one line.  Client frames carry an
``op`` (one of :data:`CLIENT_OPS`) plus an ``id`` tag the client picks;
the server echoes that tag on every frame it sends back for the
request, so one connection can interleave work.  Payloads inside the
frames — requests, results, progress events — are the versioned
:mod:`repro.api.envelope` wire forms, not a second schema.

Client -> server::

    {"op": "submit",   "id": "...", "request": <EvalRequest.to_wire()>}
    {"op": "stats",    "id": "..."}
    {"op": "shutdown", "id": "...", "drain": true}

Server -> client::

    {"op": "status", "id": "...", "status": <JobStatus.to_wire()>}
    {"op": "result", "id": "...", "result": <EvalResult.to_wire()>}
    {"op": "stats",  "id": "...", "stats": {...}}
    {"op": "ok",     "id": "..."}
    {"op": "error",  "id": "...", "error": "..."}

A ``submit`` streams ``status`` frames (``queued``, then ``running``)
and terminates with exactly one ``result`` or ``error`` frame.  Frames
are self-delimiting (``\\n``-terminated, JSON escapes any interior
newline), so the framing layer is ``readline`` on both sides.
"""

from __future__ import annotations

import json
from typing import Any, Mapping

__all__ = [
    "CLIENT_OPS",
    "MAX_FRAME_BYTES",
    "SERVER_OPS",
    "ProtocolError",
    "decode",
    "encode",
    "error_frame",
]

#: Ops a client may send.
CLIENT_OPS = ("submit", "stats", "shutdown")

#: Ops a server may send.
SERVER_OPS = ("status", "result", "stats", "ok", "error")

#: Stream-reader limit for one frame (a result payload can be large —
#: asyncio's 64 KiB default readline limit is far too small for
#: experiment records).
MAX_FRAME_BYTES = 32 * 1024 * 1024


class ProtocolError(ValueError):
    """A frame that is not valid protocol JSON."""


def encode(frame: Mapping[str, Any]) -> bytes:
    """One frame as a newline-terminated JSON line.

    ``ensure_ascii`` stays on so the encoded line can never contain a
    raw newline — the frame boundary is unambiguous by construction.
    """
    return (json.dumps(dict(frame), separators=(",", ":")) + "\n").encode()


def decode(line: bytes | str) -> dict[str, Any]:
    """Parse one frame; raises :class:`ProtocolError` on anything that
    is not a JSON object with a string ``op``."""
    if isinstance(line, bytes):
        line = line.decode("utf-8", errors="replace")
    try:
        frame = json.loads(line)
    except json.JSONDecodeError as error:
        raise ProtocolError(f"frame is not valid JSON: {error}") from None
    if not isinstance(frame, dict):
        raise ProtocolError(
            f"frame must be a JSON object, got {type(frame).__name__}"
        )
    op = frame.get("op")
    if not isinstance(op, str) or not op:
        raise ProtocolError("frame is missing its 'op' field")
    return frame


def error_frame(tag: Any, message: str) -> dict[str, Any]:
    """The standard error reply for a tagged client frame."""
    frame: dict[str, Any] = {"op": "error", "error": message}
    if tag is not None:
        frame["id"] = tag
    return frame
