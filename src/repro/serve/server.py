"""The evaluation server: one process answering many clients.

A :class:`Server` owns an asyncio event loop on a background thread, a
Unix-domain protocol socket (:mod:`repro.serve.protocol`), an async job
queue, and a pool of evaluation worker processes.  Every submission
flows through the same funnel:

1. **Dedup** — the request's content digest is looked up in the
   in-flight :class:`~repro.serve.jobs.JobTable`; an identical request
   already being computed gains a subscriber instead of a second
   computation.
2. **Batch** — the dispatcher drains whatever is queued (after a short
   linger), groups point requests by ``(evaluator, seed)`` and ships
   each group to a pool worker as *one* call, where the sweep engine's
   ``"batched"`` executor collapses batchable points further.
3. **Cache** — workers answer from the tiered caches under the
   config's cache root (evalcore memo, sweep result cache, campaign
   trajectory store) before computing, and ship per-call cache-stats
   deltas back for aggregation — ``/stats`` reports hit rates across
   every worker process, not just the parent.

Results stream back per subscriber as ``status`` events plus one
terminal ``result`` frame; the payloads are the versioned
:mod:`repro.api.envelope` wire forms, bit-identical to what a direct
``evaluate()``/``run_sweep`` of the same request produces.

A worker process dying hard (``BrokenProcessPool`` — OOM kill, an
injected ``worker-crash`` fault) costs its in-flight groups nothing
but a retry: the pool is respawned and the groups requeued, bounded
by :data:`MAX_GROUP_ATTEMPTS`.
"""

from __future__ import annotations

import asyncio
import os
import socket as socket_module
import tempfile
import threading
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro.api.config import RuntimeConfig
from repro.api.envelope import (
    SCHEMA_VERSION,
    EvalRequest,
    EvalResult,
    JobStatus,
)
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.obs.logs import get_logger
from repro.serve import protocol
from repro.serve.jobs import Job, JobTable, ServeStats

__all__ = ["MAX_GROUP_ATTEMPTS", "Server"]

_logger = get_logger("repro.serve.server")

#: How many times one job group is shipped to the pool before its jobs
#: fail: the first attempt plus recoveries from worker-pool death.
MAX_GROUP_ATTEMPTS = 3

#: Default worker-pool size when neither the constructor nor the
#: config's ``serve_workers`` picks one.
DEFAULT_WORKERS = 2

#: How long the dispatcher lingers after the first dequeued job before
#: grouping, so near-simultaneous submissions batch together.
_BATCH_LINGER_S = 0.01


def _serve_worker(
    wire_requests: list[dict], config: RuntimeConfig, attempt: int = 1
) -> tuple[list[dict], dict[str, Any]]:
    """One pool-worker call: evaluate a group, report accounting deltas.

    Runs in a worker *process*; everything in and out is wire-form
    (plain JSON-able) so it crosses the pickle boundary untouched.  The
    fault seam fires first — site key ``serve|<digests>`` — so a
    ``worker-crash:match=serve`` plan kills this worker hard
    (``os._exit``) and exercises the server's pool-respawn/requeue
    path deterministically.
    """
    from repro.api.config import config_scope
    from repro.api.envelope import evaluate_requests
    from repro.dataflow import evalcore
    from repro.reliability import faults as _faults

    requests = [EvalRequest.from_wire(wire) for wire in wire_requests]
    if config.executor in ("process", "distributed"):
        # Already inside a pool worker: keep evaluation in-process
        # (the batched executor preserves grouping) instead of nesting
        # a second pool per worker.
        config = config.with_(executor="batched")
    with config_scope(config):
        key = "serve|" + ",".join(r.digest()[:12] for r in requests)
        metrics_before = _metrics.snapshot()
        try:
            with _trace.span(
                "serve.worker", requests=len(requests), attempt=attempt
            ):
                _faults.inject_point_faults(key, attempt, allow_exit=True)
                memo = evalcore.get_memo()
                memo_before = memo.stats.as_dict() if memo is not None else {}
                results, accounting = evaluate_requests(
                    requests, config=config, cache=config.sweep_cache()
                )
                memo = evalcore.get_memo()
                memo_after = memo.stats.as_dict() if memo is not None else {}
        finally:
            # Worker spans reach disk per call (the worker can't know
            # which call is its last); the server assembles the files.
            _trace.flush()
        metrics_delta = _metrics.delta_dict(metrics_before)
    accounting["evalcore"] = {
        key: memo_after.get(key, 0) - memo_before.get(key, 0)
        for key in sorted(set(memo_before) | set(memo_after))
    }
    if metrics_delta:
        accounting["metrics"] = metrics_delta
    return [result.to_wire() for result in results], accounting


def _group_jobs(batch: Iterable[Job]) -> list[list[Job]]:
    """Partition a dequeued batch into worker-call groups: experiment
    jobs run alone, point jobs group by ``(evaluator, seed)``."""
    groups: list[list[Job]] = []
    points: dict[tuple[str, int], list[Job]] = {}
    for job in batch:
        if job.request.kind == "experiment":
            groups.append([job])
        else:
            key = (job.request.target, job.request.point_seed)
            if key not in points:
                points[key] = []
                groups.append(points[key])
            points[key].append(job)
    return groups


class Server:
    """The long-running design-evaluation service (see module docstring).

    ``config`` defaults to the environment layer
    (:meth:`RuntimeConfig.from_env`); a config without a ``cache_root``
    gets a private temporary one for the server's lifetime so the
    cache tiers exist.  ``socket_path`` resolves explicit argument >
    ``config.serve_socket`` > ``<cache_root>/serve.sock``; ``workers``
    resolves explicit argument > ``config.serve_workers`` >
    :data:`DEFAULT_WORKERS`.

    Use as a context manager (``with Server() as server:``) or call
    :meth:`start` / :meth:`stop` explicitly.  :meth:`submit` and
    :meth:`stats` are the in-process client surface (thread-safe, used
    by :class:`repro.serve.client.InProcessClient` and tests); remote
    clients connect through :class:`repro.serve.client.Client`.
    """

    def __init__(
        self,
        config: RuntimeConfig | None = None,
        socket_path: str | os.PathLike | None = None,
        workers: int | None = None,
    ) -> None:
        config = config if config is not None else RuntimeConfig.from_env()
        self._tmp_cache: tempfile.TemporaryDirectory | None = None
        if not config.cache_root:
            self._tmp_cache = tempfile.TemporaryDirectory(
                prefix="repro-serve-cache-"
            )
            config = config.with_(cache_root=self._tmp_cache.name)
        self.config = config
        self.socket_path = str(
            socket_path
            or config.serve_socket
            or Path(config.cache_root) / "serve.sock"
        )
        self.workers = int(
            workers if workers is not None
            else (config.serve_workers or DEFAULT_WORKERS)
        )
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1 (got {self.workers})")

        self._jobs = JobTable()
        self._stats = ServeStats()
        # The server's own span buffer: the event loop runs outside any
        # config scope, so per-job spans bypass the config-gated global
        # buffer and land here (None keeps tracing a no-op).
        self._trace_buffer = (
            _trace.TraceBuffer() if self.config.trace else None
        )
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._queue: asyncio.Queue[Job] | None = None
        self._stop_event: asyncio.Event | None = None
        self._drain = True
        self._pool: ProcessPoolExecutor | None = None
        self._group_tasks: set[asyncio.Task] = set()

    # ------------------------------------------------------------------
    # lifecycle (called from any thread)
    # ------------------------------------------------------------------
    def start(self, timeout: float = 30.0) -> "Server":
        """Bind the socket and start serving; returns once ready."""
        if self._thread is not None:
            raise RuntimeError("server already started (one-shot lifecycle)")
        self._thread = threading.Thread(
            target=self._thread_main, name="repro-serve", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError(
                f"server did not come up within {timeout}s"
            )
        if self._startup_error is not None:
            self._thread.join(timeout=5.0)
            raise RuntimeError(
                f"server failed to start: {self._startup_error}"
            ) from self._startup_error
        return self

    def stop(self, drain: bool = True, timeout: float | None = 60.0) -> None:
        """Stop serving.  ``drain=True`` finishes every in-flight job
        first; ``drain=False`` fails them with an error result so no
        client hangs."""
        thread = self._thread
        if thread is None:
            return
        if thread.is_alive() and self._loop is not None:
            try:
                asyncio.run_coroutine_threadsafe(
                    self._begin_stop(drain), self._loop
                ).result(timeout=5.0)
            except Exception:
                pass
        thread.join(timeout)
        if self._tmp_cache is not None:
            self._tmp_cache.cleanup()
            self._tmp_cache = None

    def join(self, timeout: float | None = None) -> None:
        """Block until the server exits (a client sent ``shutdown``,
        or :meth:`stop` ran from another thread)."""
        if self._thread is not None:
            self._thread.join(timeout)

    @property
    def running(self) -> bool:
        return (
            self._thread is not None
            and self._thread.is_alive()
            and self._ready.is_set()
            and self._startup_error is None
        )

    def __enter__(self) -> "Server":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # in-process client surface (thread-safe)
    # ------------------------------------------------------------------
    def submit(
        self,
        request: EvalRequest,
        on_status=None,
        timeout: float | None = None,
    ) -> EvalResult:
        """Submit one request and block for its result (the in-process
        twin of ``Client.submit``; dedups and caches identically)."""
        self._require_running()
        future = asyncio.run_coroutine_threadsafe(
            self._submit_local(request, on_status), self._loop
        )
        return future.result(timeout)

    def stats(self) -> dict[str, Any]:
        """The ``/stats`` payload (see ``docs/serve.md``)."""
        self._require_running()
        future = asyncio.run_coroutine_threadsafe(
            self._stats_local(), self._loop
        )
        return future.result(timeout=10.0)

    def _require_running(self) -> None:
        if not self.running or self._loop is None:
            raise RuntimeError("server is not running (call start() first)")

    def _register_submit(
        self, request: EvalRequest, loop: asyncio.AbstractEventLoop
    ) -> tuple[Job, bool]:
        """One funnel for both client surfaces: register the submission
        and attach its telemetry (counters always; a ``serve.job`` span
        when the server config traces)."""
        job, created = self._jobs.submit(request, loop)
        counters = self._stats.metrics
        counters.inc("serve.jobs.submitted")
        if not created:
            counters.inc("serve.dedup.in_flight")
        elif self._trace_buffer is not None:
            job.span = _trace.manual_span(
                "serve.job",
                self._trace_buffer,
                target=request.target,
                kind=request.kind,
                digest=job.digest[:12],
            )
            job.span.add_event("queued")
        return job, created

    async def _submit_local(self, request: EvalRequest, on_status):
        loop = asyncio.get_running_loop()
        job, created = self._register_submit(request, loop)
        if on_status is not None:
            def relay(frame: dict) -> None:
                if frame.get("op") == "status":
                    on_status(JobStatus.from_wire(frame["status"]))
            job.subscribers.append(relay)
            on_status(job.status(queue_depth=self._queue.qsize()))
        if created:
            self._queue.put_nowait(job)
        try:
            return await asyncio.shield(job.future)
        except asyncio.CancelledError:
            # Loop teardown after a forced stop cancels this coroutine
            # after the job was already failed with its shutdown error
            # result — hand that result out instead of the cancellation
            # so waiting client threads always get an EvalResult.
            if job.future.done() and not job.future.cancelled():
                return job.future.result()
            raise

    async def _stats_local(self) -> dict[str, Any]:
        return self._stats_payload()

    # ------------------------------------------------------------------
    # event loop (background thread)
    # ------------------------------------------------------------------
    def _thread_main(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as error:
            self._startup_error = error
        finally:
            self._ready.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue()
        self._stop_event = asyncio.Event()
        self._claim_socket_path()
        self._pool = ProcessPoolExecutor(max_workers=self.workers)
        server = await asyncio.start_unix_server(
            self._handle_client,
            path=self.socket_path,
            limit=protocol.MAX_FRAME_BYTES,
        )
        dispatcher = asyncio.create_task(self._dispatch_loop())
        try:
            self._ready.set()
            await self._stop_event.wait()
            server.close()
            await server.wait_closed()
            if self._drain:
                while (
                    self._jobs.in_flight
                    or self._group_tasks
                    or not self._queue.empty()
                ):
                    await asyncio.sleep(0.02)
            dispatcher.cancel()
            await asyncio.gather(dispatcher, return_exceptions=True)
            if not self._drain:
                for task in list(self._group_tasks):
                    task.cancel()
                await asyncio.gather(
                    *self._group_tasks, return_exceptions=True
                )
                for job in self._jobs.pending_jobs():
                    self._jobs.finish(
                        job,
                        EvalResult(
                            request_digest=job.digest,
                            status="error",
                            error="server stopped before this job ran",
                        ),
                    )
        finally:
            server.close()
            pool, self._pool = self._pool, None
            if pool is not None:
                pool.shutdown(wait=self._drain, cancel_futures=not self._drain)
            self._export_trace()
            Path(self.socket_path).unlink(missing_ok=True)

    def _export_trace(self) -> None:
        """Flush the server's spans and assemble the session trace.

        Runs at shutdown, after the pool drained: the server's
        ``serve.job`` spans join the per-pid JSONL files the workers
        flushed, and everything merges into one Chrome-loadable
        ``trace.json`` under the config's trace directory.
        """
        if self._trace_buffer is None:
            return
        trace_dir = self.config.effective_trace_dir()
        if not trace_dir:
            return
        try:
            directory = Path(trace_dir)
            directory.mkdir(parents=True, exist_ok=True)
            self._trace_buffer.append_jsonl(
                directory / f"spans-{os.getpid()}.jsonl"
            )
            _trace.write_chrome_trace(
                directory / "trace.json", _trace.load_spans(directory)
            )
        except OSError as error:
            _logger.warning("could not export serve trace: %s", error)

    def _claim_socket_path(self) -> None:
        """Remove a stale socket file; refuse to displace a live server."""
        if not os.path.exists(self.socket_path):
            Path(self.socket_path).parent.mkdir(parents=True, exist_ok=True)
            return
        probe = socket_module.socket(socket_module.AF_UNIX)
        probe.settimeout(0.2)
        try:
            probe.connect(self.socket_path)
        except OSError:
            os.unlink(self.socket_path)  # stale leftover, safe to replace
        else:
            raise RuntimeError(
                f"another server is already listening on {self.socket_path}"
            )
        finally:
            probe.close()

    async def _begin_stop(self, drain: bool) -> None:
        self._drain = drain
        self._stop_event.set()

    # ------------------------------------------------------------------
    # dispatch and evaluation
    # ------------------------------------------------------------------
    async def _dispatch_loop(self) -> None:
        while True:
            batch = [await self._queue.get()]
            await asyncio.sleep(_BATCH_LINGER_S)
            while True:
                try:
                    batch.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            for group in _group_jobs(batch):
                task = asyncio.create_task(self._run_group(group))
                self._group_tasks.add(task)
                task.add_done_callback(self._group_tasks.discard)

    async def _run_group(self, group: list[Job], attempt: int = 1) -> None:
        loop = asyncio.get_running_loop()
        for job in group:
            if job.state == "queued":
                job.state = "running"
                if job.span is not None:
                    job.span.add_event("running", attempt=attempt)
                await job.notify(
                    {"op": "status", "status": job.status().to_wire()}
                )
            elif job.span is not None and attempt > 1:
                job.span.add_event("requeued", attempt=attempt)
        wires = [job.request.to_wire() for job in group]
        pool = self._pool
        try:
            payload = await loop.run_in_executor(
                pool, _serve_worker, wires, self.config, attempt
            )
        except BrokenProcessPool:
            self._stats.worker_crashes += 1
            self._respawn_pool(pool)
            if attempt < MAX_GROUP_ATTEMPTS:
                self._stats.requeues += 1
                await self._run_group(group, attempt + 1)
                return
            for job in group:
                await self._finish(
                    job,
                    EvalResult(
                        request_digest=job.digest,
                        status="error",
                        error=(
                            f"worker pool died {attempt} times evaluating "
                            f"this group"
                        ),
                    ),
                )
            return
        except Exception as error:
            for job in group:
                await self._finish(
                    job,
                    EvalResult(
                        request_digest=job.digest,
                        status="error",
                        error=f"{type(error).__name__}: {error}",
                    ),
                )
            return
        results_wire, accounting = payload
        self._stats.absorb(accounting)
        for job, wire in zip(group, results_wire):
            result = EvalResult.from_wire(wire)
            self._stats.observe_values(result.values)
            await self._finish(job, result)

    def _respawn_pool(self, failed_pool: ProcessPoolExecutor | None) -> None:
        # Several groups can observe the same BrokenProcessPool; only
        # the first to arrive replaces it.  The broken pool's pending
        # futures already carry the error, so no cancel_futures here.
        if self._pool is failed_pool and self._pool is not None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
            try:
                failed_pool.shutdown(wait=False)
            except Exception:
                pass

    async def _finish(self, job: Job, result: EvalResult) -> None:
        self._jobs.finish(job, result)
        counters = self._stats.metrics
        counters.inc(
            "serve.jobs.completed" if result.ok else "serve.jobs.failed"
        )
        counters.inc(
            "serve.jobs.cache_hits" if result.cached
            else "serve.jobs.evaluated"
        )
        if job.span is not None:
            job.span.set_attribute("cached", result.cached)
            job.span.finish(
                error=None if result.ok else (result.error or "failed")
            )
        await job.notify({"op": "result", "result": result.to_wire()})

    # ------------------------------------------------------------------
    # protocol handling
    # ------------------------------------------------------------------
    async def _handle_client(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except ValueError:
                    await self._send(
                        writer, protocol.error_frame(None, "frame too large")
                    )
                    break
                if not line:
                    break
                try:
                    frame = protocol.decode(line)
                except protocol.ProtocolError as error:
                    await self._send(
                        writer, protocol.error_frame(None, str(error))
                    )
                    continue
                op, tag = frame["op"], frame.get("id")
                if op == "submit":
                    await self._handle_submit(frame, writer)
                elif op == "stats":
                    await self._send(
                        writer,
                        {"op": "stats", "id": tag,
                         "stats": self._stats_payload()},
                    )
                elif op == "shutdown":
                    await self._send(writer, {"op": "ok", "id": tag})
                    await self._begin_stop(bool(frame.get("drain", True)))
                else:
                    await self._send(
                        writer,
                        protocol.error_frame(tag, f"unknown op {op!r}"),
                    )
        except (ConnectionError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            # Loop teardown cancelled this connection (the client kept
            # it open across server shutdown) — exit cleanly.
            pass
        finally:
            try:
                writer.close()
            except Exception:
                pass

    async def _handle_submit(
        self, frame: Mapping[str, Any], writer: asyncio.StreamWriter
    ) -> None:
        tag = frame.get("id")
        wire = frame.get("request")
        try:
            if not isinstance(wire, Mapping):
                raise ValueError("submit frame is missing its 'request'")
            request = EvalRequest.from_wire(wire)
        except Exception as error:
            await self._send(writer, protocol.error_frame(tag, str(error)))
            return
        job, created = self._register_submit(
            request, asyncio.get_running_loop()
        )

        async def deliver(event: dict) -> None:
            await self._send(writer, {**event, "id": tag})

        job.subscribers.append(deliver)
        await self._send(
            writer,
            {"op": "status", "id": tag,
             "status": job.status(queue_depth=self._queue.qsize()).to_wire()},
        )
        if created:
            self._queue.put_nowait(job)
        elif job.state != "queued":
            # Late subscriber to a running job: tell it the real state.
            await self._send(
                writer,
                {"op": "status", "id": tag, "status": job.status().to_wire()},
            )

    async def _send(
        self, writer: asyncio.StreamWriter, frame: Mapping[str, Any]
    ) -> None:
        writer.write(protocol.encode(frame))
        await writer.drain()

    # ------------------------------------------------------------------
    # stats
    # ------------------------------------------------------------------
    def _stats_payload(self) -> dict[str, Any]:
        jobs = self._jobs
        self._stats.metrics.set_gauge(
            "serve.queue_depth", self._queue.qsize() if self._queue else 0
        )
        return {
            "schema": SCHEMA_VERSION,
            "queue_depth": self._queue.qsize() if self._queue else 0,
            "workers": self.workers,
            "jobs": jobs.counters(),
            "dedup": {
                "in_flight": jobs.dedup_in_flight,
                "cache_hits": jobs.cache_hits,
                "unique": jobs.unique,
                "duplicate_hit_rate": jobs.duplicate_hit_rate(),
            },
            "cache": self._stats.cache_payload(),
            "reliability": self._stats.reliability_payload(),
            "metrics": self._stats.metrics_payload(),
        }
