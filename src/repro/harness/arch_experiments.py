"""Architecture-model experiments: Figures 1, 5, 13, 17, 18, 19, 20.

Each ``run_*`` function returns a small result object; each
``format_*`` renders the same rows/series the paper's figure reports.
The grid-shaped experiments (Figures 17-20) run on the shared sweep
engine (:mod:`repro.sweep`), so they accept an optional result cache,
executor policy, and :class:`repro.api.config.RuntimeConfig` (threaded
to every evaluator call, including pool workers) and inherit parallel
fan-out for free.  The :mod:`repro.api` registry dispatches to these
functions — ``get_experiment("fig18-19").run(config)`` and a direct
call produce bit-identical results.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dataflow.latency import network_latency
from repro.dataflow.simulator import simulate
from repro.harness._deprecation import install_shims as _install_shims
from repro.harness.common import (
    dense_profile_for,
    histogram_fractions,
    model_entry,
    render_table,
    sparse_profile_for,
)
from repro.hw.config import ArchConfig, BASELINE_16x16, PROCRUSTES_16x16
from repro.sweep import ResultCache, SweepSpec, run_sweep
from repro.workloads.phases import PHASES

__all__ = [
    "run_fig01_potential",
    "format_fig01",
    "run_imbalance_histogram",
    "format_histogram",
    "run_fig17_energy_breakdown",
    "format_fig17",
    "run_fig18_fig19_dataflows",
    "format_fig18",
    "format_fig19",
    "run_fig20_scalability",
    "format_fig20",
]

_ALL_MAPPINGS = ("PQ", "CK", "CN", "KN")


# ----------------------------------------------------------------------
# Figure 1: idealized potential of sparse training
# ----------------------------------------------------------------------
@dataclass
class Fig01Result:
    """Dense vs. idealized-sparse energy and cycles per phase (VGG-S)."""

    network: str
    sparsity_factor: float
    dense_energy: dict[str, dict[str, float]]
    sparse_energy: dict[str, dict[str, float]]
    dense_cycles: dict[str, float]
    sparse_cycles: dict[str, float]

    def speedup(self) -> float:
        return sum(self.dense_cycles.values()) / sum(self.sparse_cycles.values())

    def energy_saving(self) -> float:
        dense = sum(sum(v.values()) for v in self.dense_energy.values())
        sparse = sum(sum(v.values()) for v in self.sparse_energy.values())
        return dense / sparse


def run_fig01_potential(
    network: str = "vgg-s", sparsity_factor: float = 5.0, seed: int = 1
) -> Fig01Result:
    """Figure 1: ideal savings from 5x sparsity on VGG-S.

    The idealized system assumes (i) perfectly even sparsity (no load
    imbalance: cycles follow *mean* per-PE work), (ii) zero-overhead
    compressed storage, and (iii) free retained-weight selection —
    matching the figure's setup.
    """
    from repro.workloads.sparsity import synthetic_profile

    entry = model_entry(network)
    t2 = entry.table2
    specs = entry.specs()
    dense = dense_profile_for(network)
    # The figure's assumption (i): sparsity evenly distributed *within*
    # each layer (infinite channel concentration), with the per-layer
    # allocation still matching the trained model's MAC reduction
    # (Table II), scaled to the requested factor.
    mac_ratio = (
        t2.dense_macs / t2.sparse_macs
        * sparsity_factor / t2.sparsity_factor
    )
    uniform = synthetic_profile(
        network,
        specs,
        sparsity_factor,
        seed=seed,
        target_mac_ratio=max(mac_ratio, 1.05),
        channel_concentration=1e9,
        act_density_range=entry.act_density_range,
    )
    arch = BASELINE_16x16
    d = simulate(dense, "KN", arch=arch, sparse=False, seed=seed)
    s = simulate(uniform, "KN", arch=PROCRUSTES_16x16, sparse=True, seed=seed)
    # Ideal latency: no imbalance — every set costs its mean work.
    sparse_cycles = {}
    for phase in PHASES:
        ideal = sum(
            float((layer.sets.mean_work * layer.sets.weight).sum())
            for layer in s.latency.layers[phase]
        )
        sparse_cycles[phase] = ideal
    return Fig01Result(
        network=network,
        sparsity_factor=sparsity_factor,
        dense_energy={p: d.energy[p].as_dict() for p in PHASES},
        sparse_energy={p: s.energy[p].as_dict() for p in PHASES},
        dense_cycles=dict(d.latency.cycles),
        sparse_cycles=sparse_cycles,
    )


def format_fig01(result: Fig01Result) -> str:
    rows = []
    for phase in PHASES:
        de = result.dense_energy[phase]
        se = result.sparse_energy[phase]
        rows.append(
            [
                phase,
                sum(de.values()),
                sum(se.values()),
                result.dense_cycles[phase],
                result.sparse_cycles[phase],
            ]
        )
    table = render_table(
        ["phase", "dense J", "sparse J", "dense cycles", "sparse cycles"],
        rows,
    )
    return (
        f"Figure 1 — ideal potential, {result.network} at "
        f"{result.sparsity_factor:.1f}x sparsity\n{table}\n"
        f"overall speedup {result.speedup():.2f}x, "
        f"energy saving {result.energy_saving():.2f}x "
        "(paper: up to 2.6x speedup, 2.3x energy)"
    )


# ----------------------------------------------------------------------
# Figures 5 and 13: load-imbalance histograms
# ----------------------------------------------------------------------
@dataclass
class HistogramResult:
    """Imbalance histogram of full-array working sets."""

    network: str
    mapping: str
    balanced: bool
    fractions: dict[float, float]
    mean_overhead: float
    p90_overhead: float
    max_overhead: float


def run_imbalance_histogram(
    network: str = "vgg-s",
    mapping: str = "CK",
    balanced: bool = False,
    phase: str = "fw",
    seed: int = 1,
    arch: ArchConfig = PROCRUSTES_16x16,
    n: int = 64,
) -> HistogramResult:
    """Figure 5 (CK, unbalanced) / Figure 13 (KN, balanced) histograms."""
    profile = sparse_profile_for(network, seed=seed)
    latency = network_latency(
        profile,
        mapping,
        arch,
        n,
        sparse=True,
        balance=balanced,
        seed=seed,
        phases=(phase,),
    )
    overheads = latency.overheads(phase)
    return HistogramResult(
        network=network,
        mapping=mapping,
        balanced=balanced,
        fractions=histogram_fractions(overheads),
        mean_overhead=float(overheads.mean()),
        p90_overhead=float(np.percentile(overheads, 90)),
        max_overhead=float(overheads.max()),
    )


def format_histogram(result: HistogramResult, figure: str) -> str:
    rows = [
        [f"{center:.0%}", f"{frac:.1%}"]
        for center, frac in result.fractions.items()
    ]
    table = render_table(["overhead bin", "fraction of working sets"], rows)
    return (
        f"{figure} — {result.network}, {result.mapping} mapping, "
        f"{'with' if result.balanced else 'no'} load balancing\n{table}\n"
        f"mean {result.mean_overhead:.1%}, p90 {result.p90_overhead:.1%}, "
        f"max {result.max_overhead:.1%}"
    )


# ----------------------------------------------------------------------
# Figure 17: energy breakdown with the KN dataflow
# ----------------------------------------------------------------------
@dataclass
class Fig17Result:
    """Per-network, per-phase, per-component energy (dense and sparse)."""

    rows: list[dict[str, object]] = field(default_factory=list)

    def savings(self) -> dict[str, float]:
        """Dense/sparse total-energy ratio per network."""
        totals: dict[str, dict[bool, float]] = {}
        for row in self.rows:
            per_net = totals.setdefault(str(row["network"]), {True: 0.0, False: 0.0})
            per_net[bool(row["sparse"])] += float(row["total_j"])  # type: ignore[index]
        return {
            net: vals[False] / vals[True] for net, vals in totals.items()
        }


def run_fig17_energy_breakdown(
    networks: tuple[str, ...] | None = None,
    seed: int = 1,
    cache: ResultCache | None = None,
    executor: str = "serial",
    workers: int | None = None,
    config=None,
) -> Fig17Result:
    """Figure 17: DRAM/GLB/RF/MAC energy, KN dataflow, D vs S."""
    from repro.models.zoo import PAPER_MODELS

    networks = networks or tuple(PAPER_MODELS)
    spec = SweepSpec.grid(
        "fig17-energy-breakdown",
        "simulate",
        {"network": list(networks), "sparse": [False, True]},
        fixed={"mapping": "KN"},
        base_seed=seed,
    )
    sweep = run_sweep(
        spec, cache=cache, executor=executor, workers=workers, config=config
    )
    result = Fig17Result()
    for point in sweep.points:
        components = point.values["energy_components_by_phase"]
        totals = point.values["energy_by_phase"]
        for phase in PHASES:
            result.rows.append(
                {
                    "network": point.params["network"],
                    "sparse": point.params["sparse"],
                    "phase": phase,
                    **components[phase],
                    "total_j": totals[phase],
                }
            )
    return result


def format_fig17(result: Fig17Result) -> str:
    rows = [
        [
            r["network"],
            "S" if r["sparse"] else "D",
            r["phase"],
            r["DRAM"],
            r["GLB"],
            r["RF"],
            r["MAC"],
            r["total_j"],
        ]
        for r in result.rows
    ]
    table = render_table(
        ["network", "D/S", "phase", "DRAM J", "GLB J", "RF J", "MAC J", "total J"],
        rows,
    )
    savings = ", ".join(
        f"{net}: {ratio:.2f}x" for net, ratio in result.savings().items()
    )
    return (
        f"Figure 17 — energy breakdown, KN dataflow\n{table}\n"
        f"energy savings: {savings} (paper: 2.27x-3.26x)"
    )


# ----------------------------------------------------------------------
# Figures 18 and 19: energy and latency across dataflows
# ----------------------------------------------------------------------
@dataclass
class DataflowSweepResult:
    """Per (network, mapping, D/S): per-phase energy and cycles."""

    rows: list[dict[str, object]] = field(default_factory=list)

    def fastest_mapping(self, network: str) -> str:
        sparse_rows = [
            r
            for r in self.rows
            if r["network"] == network and r["sparse"]
        ]
        best = min(sparse_rows, key=lambda r: float(r["total_cycles"]))  # type: ignore[arg-type]
        return str(best["mapping"])

    def energy_spread(self, network: str, sparse: bool = True) -> float:
        """Max/min total energy across simple-fabric mappings.

        The paper reports dataflow choice has negligible energy impact;
        this quantifies the spread (should stay close to 1).
        """
        values = [
            float(r["total_j"])  # type: ignore[arg-type]
            for r in self.rows
            if r["network"] == network and r["sparse"] == sparse
        ]
        return max(values) / min(values)


def _simulation_row(point) -> dict[str, object]:
    """The row shape the figure formatters expect, from a sweep point."""
    return {
        "network": point.params["network"],
        "mapping": point.params["mapping"],
        "sparse": point.params.get("sparse", True),
        "cycles_by_phase": point.values["cycles_by_phase"],
        "energy_by_phase": point.values["energy_by_phase"],
        "total_cycles": point.values["total_cycles"],
        "total_j": point.values["total_j"],
    }


def run_fig18_fig19_dataflows(
    networks: tuple[str, ...] | None = None,
    mappings: tuple[str, ...] = _ALL_MAPPINGS,
    seed: int = 1,
    cache: ResultCache | None = None,
    executor: str = "serial",
    workers: int | None = None,
    config=None,
) -> DataflowSweepResult:
    """Figures 18/19: sweep the four spatial mappings, dense and sparse."""
    from repro.models.zoo import PAPER_MODELS

    networks = networks or tuple(PAPER_MODELS)
    spec = SweepSpec.grid(
        "fig18-19-dataflows",
        "simulate",
        {
            "network": list(networks),
            "sparse": [False, True],
            "mapping": list(mappings),
        },
        base_seed=seed,
    )
    sweep = run_sweep(
        spec, cache=cache, executor=executor, workers=workers, config=config
    )
    result = DataflowSweepResult()
    result.rows.extend(_simulation_row(p) for p in sweep.points)
    return result


def _sweep_rows(result: DataflowSweepResult, key: str) -> list[list[object]]:
    rows = []
    for r in result.rows:
        by_phase = r[key]
        rows.append(
            [
                r["network"],
                r["mapping"],
                "S" if r["sparse"] else "D",
                by_phase["fw"],  # type: ignore[index]
                by_phase["bw"],  # type: ignore[index]
                by_phase["wu"],  # type: ignore[index]
                r["total_cycles" if key == "cycles_by_phase" else "total_j"],
            ]
        )
    return rows


def format_fig18(result: DataflowSweepResult) -> str:
    table = render_table(
        ["network", "mapping", "D/S", "fw J", "bw J", "wu J", "total J"],
        _sweep_rows(result, "energy_by_phase"),
    )
    networks = sorted({str(r["network"]) for r in result.rows})
    spreads = ", ".join(
        f"{net}: {result.energy_spread(net):.3f}" for net in networks
    )
    return (
        f"Figure 18 — energy across dataflows\n{table}\n"
        f"sparse energy max/min across mappings: {spreads} "
        "(paper: negligible variation)"
    )


def format_fig19(result: DataflowSweepResult) -> str:
    table = render_table(
        ["network", "mapping", "D/S", "fw cyc", "bw cyc", "wu cyc", "total cyc"],
        _sweep_rows(result, "cycles_by_phase"),
    )
    networks = sorted({str(r["network"]) for r in result.rows})
    fastest = ", ".join(
        f"{net}: {result.fastest_mapping(net)}" for net in networks
    )
    return (
        f"Figure 19 — training latency across dataflows\n{table}\n"
        f"fastest sparse mapping: {fastest} (paper: KN for all)"
    )


# ----------------------------------------------------------------------
# Figure 20: scalability 16x16 -> 32x32
# ----------------------------------------------------------------------
@dataclass
class Fig20Result:
    rows: list[dict[str, object]] = field(default_factory=list)

    def latency_scaling(self, network: str, mapping: str = "KN") -> float:
        """Cycles(16x16) / cycles(32x32): ideal is 4.0."""
        per_size = {
            int(r["array"]): float(r["total_cycles"])  # type: ignore[arg-type]
            for r in self.rows
            if r["network"] == network and r["mapping"] == mapping
        }
        return per_size[16] / per_size[32]

    def energy_scaling(self, network: str, mapping: str = "KN") -> float:
        per_size = {
            int(r["array"]): float(r["total_j"])  # type: ignore[arg-type]
            for r in self.rows
            if r["network"] == network and r["mapping"] == mapping
        }
        return per_size[32] / per_size[16]


def run_fig20_scalability(
    networks: tuple[str, ...] = ("resnet18", "mobilenet-v2"),
    mappings: tuple[str, ...] = _ALL_MAPPINGS,
    seed: int = 1,
    cache: ResultCache | None = None,
    executor: str = "serial",
    workers: int | None = None,
    config=None,
) -> Fig20Result:
    """Figure 20: quadruple the PEs (and double the GLB), sparse runs."""
    spec = SweepSpec.grid(
        "fig20-scalability",
        "simulate",
        {
            "network": list(networks),
            "scale": [1, 2],
            "mapping": list(mappings),
        },
        fixed={"sparse": True},
        base_seed=seed,
    )
    sweep = run_sweep(
        spec, cache=cache, executor=executor, workers=workers, config=config
    )
    result = Fig20Result()
    for point in sweep.points:
        row = _simulation_row(point)
        del row["sparse"]
        row["array"] = int(point.values["array_side"])
        result.rows.append(row)
    return result


def format_fig20(result: Fig20Result) -> str:
    rows = [
        [
            r["network"],
            r["mapping"],
            f"{r['array']}x{r['array']}",
            r["total_cycles"],
            r["total_j"],
        ]
        for r in result.rows
    ]
    table = render_table(
        ["network", "mapping", "array", "total cycles", "total J"], rows
    )
    networks = sorted({str(r["network"]) for r in result.rows})
    scaling = ", ".join(
        f"{net}: {result.latency_scaling(net):.2f}x cycles, "
        f"{result.energy_scaling(net):.2f}x energy"
        for net in networks
    )
    return (
        f"Figure 20 — scaling 256 -> 1024 PEs (KN)\n{table}\n"
        f"{scaling} (paper: ~3.9x cycles on 4x cores, energy ~unchanged)"
    )


# ----------------------------------------------------------------------
# legacy surface: the entry functions above moved behind the
# repro.api registry; direct imports still work but warn.  Library
# code uses ``entry_point(name)`` (warning-free); the result
# dataclasses stay plain module attributes.
# ----------------------------------------------------------------------
_ENTRY_POINTS = (
    "run_fig01_potential",
    "format_fig01",
    "run_imbalance_histogram",
    "format_histogram",
    "run_fig17_energy_breakdown",
    "format_fig17",
    "run_fig18_fig19_dataflows",
    "format_fig18",
    "format_fig19",
    "run_fig20_scalability",
    "format_fig20",
)
_DEPRECATED, entry_point, __getattr__, __dir__ = _install_shims(
    globals(), _ENTRY_POINTS
)
