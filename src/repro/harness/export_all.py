"""Persist every architecture-model experiment as JSON/CSV records.

``python -m repro.harness export [directory]`` regenerates the fast
(analytical) tables and figures and writes one record per experiment
under the given directory (default ``./results``), using the canonical
:mod:`repro.report.export` layout.  The training-dynamics experiments
(Figs 6/7/15/16) are excluded because they train networks; run them
via ``python -m repro.harness training`` and the benches instead.
"""

from __future__ import annotations

from pathlib import Path
from typing import Mapping, Sequence

from repro.harness.arch_experiments import (
    run_fig01_potential,
    run_fig17_energy_breakdown,
    run_fig18_fig19_dataflows,
    run_fig20_scalability,
    run_imbalance_histogram,
)
from repro.harness.tables import run_table2, run_table3
from repro.report.export import ResultsDirectory, experiment_record

__all__ = ["export_all"]


def _save_rows(
    results: ResultsDirectory,
    experiment_id: str,
    rows: Sequence[Mapping[str, object]],
    params: Mapping[str, object],
    notes: str,
) -> None:
    """Row-list results become one CSV plus the JSON record."""
    results.save_record(
        experiment_record(
            experiment_id, params, {"rows": [dict(r) for r in rows]},
            notes=notes,
        )
    )
    if rows:
        headers = list(rows[0].keys())
        results.save_table(
            experiment_id,
            "rows",
            headers,
            [[row.get(h) for h in headers] for row in rows],
        )


def _export_fig01(results: ResultsDirectory) -> None:
    fig01 = run_fig01_potential()
    results.save_record(
        experiment_record(
            "fig01",
            {"network": fig01.network, "sparsity": fig01.sparsity_factor},
            {
                "dense_energy": fig01.dense_energy,
                "sparse_energy": fig01.sparse_energy,
                "dense_cycles": fig01.dense_cycles,
                "sparse_cycles": fig01.sparse_cycles,
                "speedup": fig01.speedup(),
                "energy_saving": fig01.energy_saving(),
            },
            notes="idealized potential (Figure 1)",
        )
    )


def _export_histograms(results: ResultsDirectory) -> None:
    for exp_id, mapping, balanced in (
        ("fig05", "CK", False),
        ("fig13", "KN", True),
    ):
        hist = run_imbalance_histogram("vgg-s", mapping, balanced)
        results.save_record(
            experiment_record(
                exp_id,
                {
                    "network": hist.network,
                    "mapping": hist.mapping,
                    "balanced": hist.balanced,
                },
                {
                    "fractions": {
                        str(center): frac
                        for center, frac in hist.fractions.items()
                    },
                    "mean_overhead": hist.mean_overhead,
                    "p90_overhead": hist.p90_overhead,
                    "max_overhead": hist.max_overhead,
                },
                notes=f"imbalance histogram ({exp_id})",
            )
        )


def _export_tables(results: ResultsDirectory) -> None:
    table2 = run_table2(with_training=False)
    _save_rows(
        results, "table2", table2.rows, {},
        notes="model statistics (Table II)",
    )
    table3 = run_table3()
    results.save_record(
        experiment_record(
            "table3",
            {"n_pes": table3.model.n_pes},
            {
                "components": [vars(c) for c in table3.model.components],
                "area_overhead": table3.area_overhead,
                "power_overhead": table3.power_overhead,
            },
            notes="silicon costs (Table III)",
        )
    )


def _export_beyond(results: ResultsDirectory) -> None:
    from repro.harness.beyond_experiments import (
        run_fabric_pricing,
        run_format_costs,
        run_schedule_survey,
    )

    costs = run_format_costs()
    results.save_record(
        experiment_record(
            "format-costs",
            {"density": 0.19},
            {
                layer: [
                    {
                        "format": c.format_name,
                        "forward": c.forward,
                        "backward": c.backward,
                        "storage_bits": c.storage_bits,
                        "updatable": c.updatable,
                    }
                    for c in table
                ]
                for layer, table in costs.items()
            },
            notes="Section II-D format access costs",
        )
    )
    results.save_record(
        experiment_record(
            "schedule-survey",
            {"network": "resnet18", "iterations": 90 * 5_005},
            run_schedule_survey(),
            notes="intro claims (i)-(iii): schedules and memory",
        )
    )
    results.save_record(
        experiment_record(
            "fabric-pricing",
            {"sides": [8, 16, 32, 64]},
            {str(side): fracs for side, fracs in run_fabric_pricing().items()},
            notes="Section IV-C interconnect area fractions",
        )
    )


def export_all(root: str | Path = "results") -> list[str]:
    """Run and persist the analytical experiments; returns the ids."""
    results = ResultsDirectory(root)
    _export_fig01(results)
    _export_histograms(results)
    _export_beyond(results)
    _save_rows(
        results,
        "fig17",
        run_fig17_energy_breakdown().rows,
        {"mapping": "KN"},
        notes="energy breakdown per phase (Figure 17)",
    )
    sweep = run_fig18_fig19_dataflows()
    _save_rows(
        results, "fig18-19", sweep.rows, {},
        notes="dataflow sweep: energy and cycles (Figures 18/19)",
    )
    _save_rows(
        results,
        "fig20",
        run_fig20_scalability().rows,
        {"scales": [16, 32]},
        notes="scalability 16x16 vs 32x32 (Figure 20)",
    )
    _export_tables(results)
    return results.list_experiments()
