"""Persist every architecture-model experiment as JSON/CSV records.

``python -m repro.harness export [directory]`` walks the
:mod:`repro.api` experiment registry, runs every experiment that
defines an export schema (the fast analytical ones), and writes one
record per experiment under the given directory (default
``./results``) using the canonical :mod:`repro.report.export` layout.
The training-dynamics experiments (Figs 6/7/15/16) define no exporter
because they train networks; run them via ``python -m repro.harness
training`` and the benches instead.

The ``_export_*`` helpers here are the registry experiments' export
schemas — each takes a ``ResultsDirectory`` plus a precomputed result
(or runs the experiment itself when called standalone).
"""

from __future__ import annotations

from pathlib import Path
from typing import Mapping, Sequence

from repro.report.export import ResultsDirectory, experiment_record

__all__ = ["export_all"]


def _save_rows(
    results: ResultsDirectory,
    experiment_id: str,
    rows: Sequence[Mapping[str, object]],
    params: Mapping[str, object],
    notes: str,
) -> None:
    """Row-list results become one CSV plus the JSON record."""
    results.save_record(
        experiment_record(
            experiment_id, params, {"rows": [dict(r) for r in rows]},
            notes=notes,
        )
    )
    if rows:
        headers = list(rows[0].keys())
        results.save_table(
            experiment_id,
            "rows",
            headers,
            [[row.get(h) for h in headers] for row in rows],
        )


def _export_fig01(results: ResultsDirectory, fig01=None) -> None:
    if fig01 is None:
        from repro.harness import arch_experiments as _arch

        fig01 = _arch.entry_point("run_fig01_potential")()
    results.save_record(
        experiment_record(
            "fig01",
            {"network": fig01.network, "sparsity": fig01.sparsity_factor},
            {
                "dense_energy": fig01.dense_energy,
                "sparse_energy": fig01.sparse_energy,
                "dense_cycles": fig01.dense_cycles,
                "sparse_cycles": fig01.sparse_cycles,
                "speedup": fig01.speedup(),
                "energy_saving": fig01.energy_saving(),
            },
            notes="idealized potential (Figure 1)",
        )
    )


def _export_histogram(
    results: ResultsDirectory, experiment_id: str, hist
) -> None:
    results.save_record(
        experiment_record(
            experiment_id,
            {
                "network": hist.network,
                "mapping": hist.mapping,
                "balanced": hist.balanced,
            },
            {
                "fractions": {
                    str(center): frac
                    for center, frac in hist.fractions.items()
                },
                "mean_overhead": hist.mean_overhead,
                "p90_overhead": hist.p90_overhead,
                "max_overhead": hist.max_overhead,
            },
            notes=f"imbalance histogram ({experiment_id})",
        )
    )


def _export_histograms(results: ResultsDirectory) -> None:
    from repro.harness import arch_experiments as _arch

    run_imbalance_histogram = _arch.entry_point("run_imbalance_histogram")

    for exp_id, mapping, balanced in (
        ("fig05", "CK", False),
        ("fig13", "KN", True),
    ):
        _export_histogram(
            results, exp_id, run_imbalance_histogram("vgg-s", mapping, balanced)
        )


def _export_fig17(results: ResultsDirectory, fig17=None) -> None:
    if fig17 is None:
        from repro.harness import arch_experiments as _arch

        fig17 = _arch.entry_point("run_fig17_energy_breakdown")()
    _save_rows(
        results,
        "fig17",
        fig17.rows,
        {"mapping": "KN"},
        notes="energy breakdown per phase (Figure 17)",
    )


def _export_fig18_19(results: ResultsDirectory, sweep=None) -> None:
    if sweep is None:
        from repro.harness import arch_experiments as _arch

        sweep = _arch.entry_point("run_fig18_fig19_dataflows")()
    _save_rows(
        results, "fig18-19", sweep.rows, {},
        notes="dataflow sweep: energy and cycles (Figures 18/19)",
    )


def _export_fig20(results: ResultsDirectory, fig20=None) -> None:
    if fig20 is None:
        from repro.harness import arch_experiments as _arch

        fig20 = _arch.entry_point("run_fig20_scalability")()
    _save_rows(
        results,
        "fig20",
        fig20.rows,
        {"scales": [16, 32]},
        notes="scalability 16x16 vs 32x32 (Figure 20)",
    )


def _export_table2(results: ResultsDirectory, table2=None) -> None:
    if table2 is None:
        from repro.harness.tables import run_table2

        table2 = run_table2(with_training=False)
    _save_rows(
        results, "table2", table2.rows, {},
        notes="model statistics (Table II)",
    )


def _export_table3(results: ResultsDirectory, table3=None) -> None:
    if table3 is None:
        from repro.harness.tables import run_table3

        table3 = run_table3()
    results.save_record(
        experiment_record(
            "table3",
            {"n_pes": table3.model.n_pes},
            {
                "components": [vars(c) for c in table3.model.components],
                "area_overhead": table3.area_overhead,
                "power_overhead": table3.power_overhead,
            },
            notes="silicon costs (Table III)",
        )
    )


def _export_tables(results: ResultsDirectory) -> None:
    _export_table2(results)
    _export_table3(results)


def _export_format_costs(results: ResultsDirectory, costs=None) -> None:
    if costs is None:
        from repro.harness import beyond_experiments as _beyond

        costs = _beyond.entry_point("run_format_costs")()
    results.save_record(
        experiment_record(
            "format-costs",
            {"density": 0.19},
            {
                layer: [
                    {
                        "format": c.format_name,
                        "forward": c.forward,
                        "backward": c.backward,
                        "storage_bits": c.storage_bits,
                        "updatable": c.updatable,
                    }
                    for c in table
                ]
                for layer, table in costs.items()
            },
            notes="Section II-D format access costs",
        )
    )


def _export_schedule_survey(results: ResultsDirectory, survey=None) -> None:
    if survey is None:
        from repro.harness import beyond_experiments as _beyond

        survey = _beyond.entry_point("run_schedule_survey")()
    results.save_record(
        experiment_record(
            "schedule-survey",
            {"network": "resnet18", "iterations": 90 * 5_005},
            survey,
            notes="intro claims (i)-(iii): schedules and memory",
        )
    )


def _export_fabric_pricing(results: ResultsDirectory, pricing=None) -> None:
    if pricing is None:
        from repro.harness import beyond_experiments as _beyond

        pricing = _beyond.entry_point("run_fabric_pricing")()
    results.save_record(
        experiment_record(
            "fabric-pricing",
            {"sides": [8, 16, 32, 64]},
            {str(side): fracs for side, fracs in pricing.items()},
            notes="Section IV-C interconnect area fractions",
        )
    )


def _export_beyond(results: ResultsDirectory) -> None:
    _export_format_costs(results)
    _export_schedule_survey(results)
    _export_fabric_pricing(results)


def export_all(root: str | Path = "results", config=None) -> list[str]:
    """Run and persist every exportable registry experiment.

    Dispatches through the :mod:`repro.api` catalogue: each experiment
    flagged ``exported`` runs under ``config`` (default: the active
    :class:`~repro.api.config.RuntimeConfig`) and is written through
    its own export schema.  Returns the exported experiment ids.
    """
    from repro.api import get_config, list_experiments

    config = config if config is not None else get_config()
    results = ResultsDirectory(root)
    for experiment in list_experiments():
        if not experiment.exported:
            continue
        experiment.export(results, experiment.run(config))
    return results.list_experiments()
