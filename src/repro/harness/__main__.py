"""Regenerate every table and figure from the command line.

Usage::

    python -m repro.harness            # everything (training runs too)
    python -m repro.harness arch       # architecture-model experiments
    python -m repro.harness training   # training-dynamics experiments
    python -m repro.harness tables     # Tables II (stats) and III
    python -m repro.harness beyond     # beyond-the-paper analyses
    python -m repro.harness export [dir]  # persist results as JSON/CSV
    python -m repro.harness explore [budget] [strategy]
                                       # Pareto design-space search
                                       # (--objective iteration|trajectory)
    python -m repro.harness profile [networks] [mappings]
                                       # time simulate() per stage
                                       # (comma-separated lists)
    python -m repro.harness campaign [--smoke] [--model M] [--epochs E]
                                       # train → trajectory → replay

Every subcommand that touches an on-disk cache accepts one
``--cache-dir DIR`` flag: ``explore`` roots its sweep results,
evaluation-core sets, and campaign trajectories there; ``profile``
uses it as the evaluation core's disk tier; ``campaign`` stores
trajectories under it.  The equivalent ``REPRO_*`` environment knobs
are documented in ``docs/architecture.md``.
"""

from __future__ import annotations

import sys
import time

from repro.harness.arch_experiments import (
    format_fig01,
    format_fig17,
    format_fig18,
    format_fig19,
    format_fig20,
    format_histogram,
    run_fig01_potential,
    run_fig17_energy_breakdown,
    run_fig18_fig19_dataflows,
    run_fig20_scalability,
    run_imbalance_histogram,
)
from repro.harness.tables import (
    format_table2,
    format_table3,
    run_table2,
    run_table3,
)
from repro.harness.training_experiments import (
    format_curves,
    run_fig06_decay,
    run_fig07_quantile,
    run_fig15_cifar_curves,
    run_fig16_sparsity_sweep,
)


def _banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def run_arch() -> None:
    _banner("Figure 1 — idealized potential")
    print(format_fig01(run_fig01_potential()))
    _banner("Figure 5 — imbalance, weight-stationary C,K, no balancing")
    print(format_histogram(
        run_imbalance_histogram("vgg-s", "CK", balanced=False), "Figure 5"
    ))
    _banner("Figure 13 — imbalance, K,N with half-tile balancing")
    print(format_histogram(
        run_imbalance_histogram("vgg-s", "KN", balanced=True), "Figure 13"
    ))
    _banner("Figure 17 — energy breakdown (K,N)")
    print(format_fig17(run_fig17_energy_breakdown()))
    _banner("Figures 18/19 — dataflow sweep")
    sweep = run_fig18_fig19_dataflows()
    print(format_fig18(sweep))
    print()
    print(format_fig19(sweep))
    _banner("Figure 20 — scalability 16x16 -> 32x32")
    print(format_fig20(run_fig20_scalability()))


def run_training() -> None:
    _banner("Figure 6 — initial-weight decay")
    decayed, plain = run_fig06_decay(epochs=8)
    print(format_curves([decayed, plain], "init decay vs none"))
    _banner("Figure 7 — quantile estimation vs exact sort")
    quantile, exact = run_fig07_quantile(epochs=8)
    print(format_curves([quantile, exact], "quantile vs sort"))
    _banner("Figure 15 — Procrustes vs SGD (CIFAR-10 stand-ins)")
    for network, (p, b) in run_fig15_cifar_curves(epochs=6).items():
        print(format_curves([p, b], network))
    _banner("Figure 16 — sparsity sweep (ResNet18 stand-in)")
    sweep = run_fig16_sparsity_sweep(epochs=6)
    print(format_curves(list(sweep.values()), "resnet18 sweep"))


def run_tables() -> None:
    _banner("Table II — model statistics")
    print(format_table2(run_table2(with_training=False)))
    _banner("Table III — silicon costs")
    print(format_table3(run_table3()))


def run_beyond() -> None:
    from repro.harness.beyond_experiments import (
        format_eager_comparison,
        format_fabric_pricing,
        format_format_costs,
        format_schedule_survey,
        run_eager_comparison,
        run_fabric_pricing,
        run_format_costs,
        run_schedule_survey,
    )

    _banner("Section II-D — sparse formats under training access patterns")
    print(format_format_costs(run_format_costs()))
    _banner("Intro claims (i)-(iii) — schedules and memory (ResNet18)")
    print(format_schedule_survey(run_schedule_survey()))
    _banner("Section IV-C — interconnect area fraction vs. array size")
    print(format_fabric_pricing(run_fabric_pricing()))
    _banner("Section VII-A — Eager Pruning dataflow vs. Procrustes K,N")
    print(format_eager_comparison(*run_eager_comparison()))


def _take_flag(
    args: list[str], flag: str, default: str | None = None
) -> tuple[list[str], str | None]:
    """Pop one ``--flag value`` pair from an argument list.

    Returns the remaining arguments and the flag's value (or
    ``default``).  This is the shared plumbing that gives ``explore``,
    ``profile``, and ``campaign`` one consistent ``--cache-dir``.
    """
    args = list(args)
    if flag not in args:
        return args, default
    index = args.index(flag)
    try:
        value = args[index + 1]
    except IndexError:
        raise ValueError(f"flag {flag} needs a value") from None
    del args[index : index + 2]
    return args, value


def _reject_unknown_flags(args: list[str], subcommand: str) -> None:
    """Fail clearly on a mistyped flag instead of misreading it as a
    positional argument."""
    for token in args:
        if token.startswith("--"):
            raise ValueError(
                f"unknown {subcommand} flag {token!r}"
            )


def run_explore_cli(*args: str) -> None:
    from repro.harness.explore_experiments import (
        format_frontier,
        run_explore,
    )

    rest, cache_dir = _take_flag(
        list(args), "--cache-dir", "results/explore-cache"
    )
    rest, objective = _take_flag(rest, "--objective", "iteration")
    _reject_unknown_flags(rest, "explore")
    budget = rest[0] if len(rest) > 0 else "120"
    strategy = rest[1] if len(rest) > 1 else "greedy"
    _banner(
        f"Design-space exploration — objective={objective}, "
        f"strategy={strategy}, budget={budget}, cache={cache_dir}"
    )
    result = run_explore(
        budget=int(budget),
        strategy=strategy,
        cache_dir=cache_dir,
        objective=objective,
    )
    print(format_frontier(result))


def run_profile_cli(*args: str) -> None:
    from repro.harness.profile_cmd import format_profile, run_profile

    rest, cache_dir = _take_flag(list(args), "--cache-dir")
    _reject_unknown_flags(rest, "profile")
    networks = rest[0] if len(rest) > 0 else "vgg-s"
    mappings = rest[1] if len(rest) > 1 else "KN,CN,CK,PQ"
    _banner(
        f"simulate() per-stage timing — networks={networks}, "
        f"mappings={mappings}"
        + (f", cache={cache_dir}" if cache_dir else "")
    )
    rows = run_profile(
        networks=tuple(networks.split(",")),
        mappings=tuple(mappings.split(",")),
        cache_dir=cache_dir,
    )
    print(format_profile(rows))


def run_campaign_subcommand(*args: str) -> None:
    from repro.harness.campaign_cmd import run_campaign_cli

    _banner("Training campaign — measured trajectory → replay → report")
    run_campaign_cli(list(args))


def run_export(root: str = "results") -> None:
    from repro.harness.export_all import export_all

    _banner(f"Exporting analytical experiments to {root}/")
    for experiment_id in export_all(root):
        print(f"  wrote {root}/{experiment_id}/")


def main(argv: list[str]) -> int:
    start = time.time()
    what = argv[1] if len(argv) > 1 else "all"
    if what == "export":
        run_export(*(argv[2:3] or ["results"]))
        print(f"\ndone in {time.time() - start:.1f}s")
        return 0
    if what == "explore":
        try:
            run_explore_cli(*argv[2:])
        except (KeyError, ValueError) as error:
            print(f"explore: {error}")
            return 2
        print(f"\ndone in {time.time() - start:.1f}s")
        return 0
    if what == "profile":
        try:
            run_profile_cli(*argv[2:])
        except (KeyError, ValueError) as error:
            print(f"profile: {error}")
            return 2
        print(f"\ndone in {time.time() - start:.1f}s")
        return 0
    if what == "campaign":
        try:
            run_campaign_subcommand(*argv[2:])
        except (KeyError, ValueError) as error:
            print(f"campaign: {error}")
            return 2
        print(f"\ndone in {time.time() - start:.1f}s")
        return 0
    runners = {
        "arch": (run_arch,),
        "training": (run_training,),
        "tables": (run_tables,),
        "beyond": (run_beyond,),
        "all": (run_tables, run_arch, run_beyond, run_training),
    }
    if what not in runners:
        choices = sorted(
            [*runners, "campaign", "explore", "export", "profile"]
        )
        print(f"unknown selection {what!r}; choose from {choices}")
        return 2
    for runner in runners[what]:
        runner()
    print(f"\ndone in {time.time() - start:.1f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
