"""Regenerate every table and figure from the command line.

The CLI is generated from the :mod:`repro.api` experiment registry::

    python -m repro.harness list              # the experiment catalogue
    python -m repro.harness run fig18-19      # one experiment by id
    python -m repro.harness                   # everything (training too)
    python -m repro.harness arch              # architecture-model family
    python -m repro.harness training          # training-dynamics family
    python -m repro.harness tables            # Tables I-III
    python -m repro.harness beyond            # beyond-the-paper analyses
    python -m repro.harness export [dir]      # persist results as JSON/CSV
    python -m repro.harness explore [budget] [strategy]
                                              # Pareto design-space search
    python -m repro.harness profile [networks] [mappings]
                                              # time simulate() per stage
    python -m repro.harness campaign [--smoke] [--model M] [--epochs E]
                                              # train -> trajectory -> replay
    python -m repro.harness serve [--socket PATH] [--serve-workers N]
                                              # evaluation service (repro.serve)
    python -m repro.harness submit <target> [--params JSON] [--stats]
                                              # submit to a running server

Every subcommand that touches an on-disk cache accepts one
``--cache-dir DIR`` flag, which becomes the
:class:`repro.api.RuntimeConfig` ``cache_root``: the sweep result
cache at the root, the evaluation core's disk tier at
``DIR/evalcore``, campaign trajectories at ``DIR/campaign``.  The
equivalent ``REPRO_*`` environment knobs layer in beneath explicit
flags (see ``docs/api.md``); the CLI itself never mutates the
environment.
"""

from __future__ import annotations

import argparse
import sys
import time

import repro
from repro.api import RuntimeConfig, config_scope, get_experiment, list_experiments


def _banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def _run_family(family: str, config: RuntimeConfig | None = None) -> None:
    """Run one experiment family through the registry, with banners."""
    config = config if config is not None else RuntimeConfig.from_env()
    for experiment in list_experiments(family):
        _banner(f"{' / '.join(experiment.artifacts) or experiment.id}"
                f" — {experiment.title}")
        print(experiment.format(experiment.run(config)))


def run_arch(config: RuntimeConfig | None = None) -> None:
    _run_family("arch", config)


def run_training(config: RuntimeConfig | None = None) -> None:
    _run_family("training", config)


def run_tables(config: RuntimeConfig | None = None) -> None:
    _run_family("tables", config)


def run_beyond(config: RuntimeConfig | None = None) -> None:
    _run_family("beyond", config)


def run_list(family: str | None = None) -> None:
    from repro.harness.common import render_table

    rows = [
        [
            experiment.id,
            experiment.family,
            ", ".join(experiment.artifacts) or "-",
            "yes" if experiment.exported else "",
            experiment.title,
        ]
        for experiment in list_experiments(family)
    ]
    print(render_table(
        ["id", "family", "paper artifact", "exported", "title"], rows
    ))
    print()
    print("run one with: python -m repro.harness run <id>")


def run_experiment_cli(
    experiment_id: str, config: RuntimeConfig, export_dir: str | None = None
) -> None:
    experiment = get_experiment(experiment_id)
    if export_dir is not None and not experiment.exported:
        # Fail before the (possibly minutes-long) run, not after it.
        raise ValueError(
            f"experiment {experiment.id!r} does not define an export "
            f"schema; drop --export or pick one marked 'exported' in "
            f"`list`"
        )
    _banner(f"{' / '.join(experiment.artifacts) or experiment.id}"
            f" — {experiment.title}")
    result = experiment.run(config)
    print(experiment.format(result))
    if export_dir is not None:
        from repro.report.export import ResultsDirectory

        experiment.export(ResultsDirectory(export_dir), result)
        print(f"\nwrote {export_dir}/{experiment.id}/")


# ----------------------------------------------------------------------
# legacy flag plumbing (kept for programmatic callers; the argparse
# layer below supersedes it on the command line)
# ----------------------------------------------------------------------
def _take_flag(
    args: list[str], flag: str, default: str | None = None
) -> tuple[list[str], str | None]:
    """Pop one ``--flag value`` pair from an argument list."""
    args = list(args)
    if flag not in args:
        return args, default
    index = args.index(flag)
    try:
        value = args[index + 1]
    except IndexError:
        raise ValueError(f"flag {flag} needs a value") from None
    del args[index : index + 2]
    return args, value


def _reject_unknown_flags(args: list[str], subcommand: str) -> None:
    """Fail clearly on a mistyped flag instead of misreading it as a
    positional argument."""
    for token in args:
        if token.startswith("--"):
            raise ValueError(
                f"unknown {subcommand} flag {token!r}"
            )


def run_explore_cli(*args: str) -> None:
    from repro.harness.explore_experiments import (
        format_frontier,
        run_explore,
    )

    rest, cache_dir = _take_flag(
        list(args), "--cache-dir", "results/explore-cache"
    )
    rest, objective = _take_flag(rest, "--objective", "iteration")
    rest, executor = _take_flag(rest, "--executor")
    rest, workers = _take_flag(rest, "--workers")
    _reject_unknown_flags(rest, "explore")
    budget = rest[0] if len(rest) > 0 else "120"
    strategy = rest[1] if len(rest) > 1 else "greedy"
    _banner(
        f"Design-space exploration — objective={objective}, "
        f"strategy={strategy}, budget={budget}, cache={cache_dir}"
        + (f", executor={executor}" if executor else "")
    )
    result = run_explore(
        budget=int(budget),
        strategy=strategy,
        cache_dir=cache_dir,
        objective=objective,
        executor=executor,
        workers=int(workers) if workers is not None else None,
    )
    print(format_frontier(result))


def run_profile_cli(*args: str) -> None:
    from repro.harness.profile_cmd import format_profile, run_profile

    rest, cache_dir = _take_flag(list(args), "--cache-dir")
    rest, trace_out = _take_flag(rest, "--trace-out")
    _reject_unknown_flags(rest, "profile")
    networks = rest[0] if len(rest) > 0 else "vgg-s"
    mappings = rest[1] if len(rest) > 1 else "KN,CN,CK,PQ"
    _banner(
        f"simulate() per-stage timing — networks={networks}, "
        f"mappings={mappings}"
        + (f", cache={cache_dir}" if cache_dir else "")
    )
    rows = run_profile(
        networks=tuple(networks.split(",")),
        mappings=tuple(mappings.split(",")),
        cache_dir=cache_dir,
        trace_out=trace_out,
    )
    print(format_profile(rows))
    if trace_out:
        print(f"\ntrace: wrote {trace_out}")


def run_campaign_subcommand(*args: str) -> None:
    from repro.harness.campaign_cmd import run_campaign_cli

    _banner("Training campaign — measured trajectory → replay → report")
    run_campaign_cli(list(args))


def run_serve_cli(
    config: RuntimeConfig,
    socket_path: str | None = None,
    serve_workers: int | None = None,
) -> None:
    """Run the evaluation service until SIGINT/SIGTERM or a client
    sends ``shutdown``.  Prints one ready line, then blocks."""
    import signal

    from repro.serve import Server

    def _terminate(signum, frame):
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, _terminate)
    server = Server(config, socket_path=socket_path, workers=serve_workers)
    server.start()
    print(
        f"serving on {server.socket_path} ({server.workers} workers) — "
        f"submit with: python -m repro.harness submit <experiment-id> "
        f"--socket {server.socket_path}",
        flush=True,
    )
    try:
        server.join()
        print("server stopped (client shutdown)")
    except KeyboardInterrupt:
        print("\nshutting down (draining in-flight jobs)...", flush=True)
        server.stop(drain=True)


def run_submit_cli(args: argparse.Namespace) -> int:
    """Submit one request (or ``--stats``/``--shutdown``) to a running
    server; prints pure JSON on stdout so output is pipeable."""
    import json
    from pathlib import Path

    from repro.api.envelope import EvalRequest
    from repro.serve import Client, ServeError

    overrides = {"cache_root": args.cache_dir} if args.cache_dir else {}
    config = RuntimeConfig.from_env(**overrides)
    socket_path = args.socket or config.serve_socket or (
        str(Path(config.cache_root) / "serve.sock")
        if config.cache_root
        else None
    )
    if not socket_path:
        print(
            "submit: no socket to connect to (use --socket, "
            "REPRO_SERVE_SOCKET, or --cache-dir)",
            file=sys.stderr,
        )
        return 2
    try:
        with Client(
            socket_path, timeout=args.timeout, connect_timeout=5.0
        ) as client:
            if args.stats:
                print(json.dumps(client.stats(), indent=2, sort_keys=True))
                return 0
            if args.shutdown:
                client.shutdown()
                return 0
            if not args.target:
                print(
                    "submit: a target is required unless --stats or "
                    "--shutdown is given",
                    file=sys.stderr,
                )
                return 2
            params = json.loads(args.params) if args.params else {}
            if not isinstance(params, dict):
                print(
                    "submit: --params must be a JSON object",
                    file=sys.stderr,
                )
                return 2
            request = EvalRequest(
                kind=args.kind, target=args.target,
                params=params, seed=args.seed,
            )
            result = client.submit(request)
            print(json.dumps(result.to_wire(), indent=2, sort_keys=True))
            return 0 if result.ok else 1
    except (ServeError, ValueError, TimeoutError, OSError) as error:
        print(f"submit: {error}", file=sys.stderr)
        return 2


def run_export(root: str = "results") -> None:
    _banner(f"Exporting analytical experiments to {root}/")
    from repro.harness.export_all import export_all

    for experiment_id in export_all(root):
        print(f"  wrote {root}/{experiment_id}/")


# ----------------------------------------------------------------------
# the argparse CLI
# ----------------------------------------------------------------------
def _add_config_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="root every on-disk cache tier under DIR "
             "(sweep results, DIR/evalcore, DIR/campaign)",
    )
    parser.add_argument(
        "--seed", type=int, default=None,
        help="override the experiment's canonical seed",
    )
    parser.add_argument(
        "--executor",
        choices=("batched", "serial", "process", "distributed"),
        default=None,
        help="sweep fan-out policy (default: batched — group points "
             "sharing a network into one multi-candidate pass)",
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help="process-pool size for --executor process",
    )
    parser.add_argument(
        "--exact-sampling", action="store_true",
        help="use the exact (slow) working-set sampling generators",
    )
    parser.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="re-attempt a failing/timed-out sweep point up to N times "
             "(deterministic jittered backoff; default 0)",
    )
    parser.add_argument(
        "--point-timeout", type=float, default=None, metavar="SECONDS",
        help="per-point evaluation deadline; a point exceeding it fails "
             "(and retries, if --retries allows)",
    )
    parser.add_argument(
        "--faults", default=None, metavar="SPEC",
        help="deterministic fault-injection plan for chaos testing, "
             "e.g. 'seed=7;worker-crash:p=0.2;cache-corrupt:p=0.1' "
             "(see docs/reliability.md)",
    )
    parser.add_argument(
        "--trace", action="store_true",
        help="record hierarchical spans (repro.obs) and write a "
             "Chrome-loadable trace.json at the end of the run",
    )
    parser.add_argument(
        "--trace-dir", metavar="DIR", default=None,
        help="where span files and trace.json land (default: "
             "<cache-root>/traces, else results/traces)",
    )
    parser.add_argument(
        "--metrics", action="store_true",
        help="count evaluation-stack metrics (cache traffic, sweep "
             "points, campaign epochs) and print the snapshot",
    )
    parser.add_argument(
        "--log-level", metavar="LEVEL", default=None,
        help="emit repro.* structured logs at LEVEL (DEBUG..CRITICAL) "
             "to stderr",
    )


def _config_from_args(args: argparse.Namespace) -> RuntimeConfig:
    """defaults < REPRO_* env < explicit CLI flags."""
    from repro.obs.logs import configure_logging

    overrides: dict = {}
    if args.cache_dir is not None:
        overrides["cache_root"] = args.cache_dir
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.executor is not None:
        overrides["executor"] = args.executor
    if args.workers is not None:
        overrides["workers"] = args.workers
    if args.exact_sampling:
        overrides["exact_sampling"] = True
    if args.retries is not None:
        overrides["retries"] = args.retries
    if args.point_timeout is not None:
        overrides["point_timeout_s"] = args.point_timeout
    if args.faults is not None:
        overrides["faults"] = args.faults
    if args.trace:
        overrides["trace"] = True
    if args.trace_dir is not None:
        overrides["trace_dir"] = args.trace_dir
    if args.metrics:
        overrides["metrics"] = True
    if args.log_level is not None:
        overrides["log_level"] = args.log_level
    config = RuntimeConfig.from_env(**overrides)
    if config.trace and not config.effective_trace_dir():
        # Tracing with nowhere to land (no cache root either) gets the
        # conventional results directory rather than dropping spans.
        config = config.with_(trace_dir="results/traces")
    configure_logging(config=config)
    return config


def _finish_telemetry(config: RuntimeConfig) -> None:
    """Export what the run collected (a no-op when telemetry is off).

    Called inside the command's ``config_scope``: flushes this
    process's spans, merges them with every pool worker's per-pid span
    file, writes one Chrome-loadable ``trace.json``, and prints the
    metrics snapshot.
    """
    import json
    from pathlib import Path

    from repro.obs import metrics as _metrics
    from repro.obs import trace as _trace

    if config.trace:
        _trace.flush()
        trace_dir = config.effective_trace_dir()
        if trace_dir:
            spans = _trace.load_spans(trace_dir)
            if spans:
                path = _trace.write_chrome_trace(
                    Path(trace_dir) / "trace.json", spans
                )
                print(f"\ntrace: {len(spans)} spans -> {path}")
    if config.metrics:
        payload = _metrics.registry().as_dict()
        if payload:
            print(f"\nmetrics: {json.dumps(payload, sort_keys=True)}")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description=(
            "Reproduce the Procrustes paper's tables and figures. "
            "Experiments are dispatched through the repro.api registry; "
            "see `list` for the catalogue."
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {repro.__version__}"
    )
    sub = parser.add_subparsers(dest="command", metavar="command")

    p_list = sub.add_parser(
        "list", help="show the experiment catalogue (ids, artifacts)"
    )
    p_list.add_argument(
        "--family", choices=("tables", "arch", "beyond", "training"),
        default=None, help="only one experiment family",
    )

    p_run = sub.add_parser(
        "run", help="run one registered experiment by id"
    )
    p_run.add_argument(
        "experiment", metavar="experiment-id",
        help="a registry id (see `list`), e.g. fig18-19 or table2",
    )
    p_run.add_argument(
        "--export", metavar="DIR", default=None,
        help="also persist the result under DIR (JSON/CSV)",
    )
    _add_config_flags(p_run)

    for family, description in (
        ("all", "every family (includes training runs)"),
        ("arch", "Figures 1, 5, 13, 17, 18, 19, 20"),
        ("training", "Figures 6, 7, 15, 16"),
        ("tables", "Tables I, II and III"),
        ("beyond", "beyond-the-paper analyses"),
    ):
        p_family = sub.add_parser(family, help=description)
        _add_config_flags(p_family)

    p_export = sub.add_parser(
        "export", help="persist every exportable experiment as JSON/CSV"
    )
    p_export.add_argument(
        "directory", nargs="?", default="results",
        help="output directory (default: results)",
    )

    p_explore = sub.add_parser(
        "explore", help="Pareto design-space search"
    )
    p_explore.add_argument("budget", nargs="?", type=int, default=120)
    p_explore.add_argument("strategy", nargs="?", default="greedy")
    p_explore.add_argument(
        "--cache-dir", default="results/explore-cache", metavar="DIR"
    )
    p_explore.add_argument(
        "--objective", choices=("iteration", "trajectory"),
        default="iteration",
    )
    p_explore.add_argument(
        "--executor",
        choices=("batched", "serial", "process", "distributed"),
        default=None,
        help="sweep fan-out policy (default: the active config's, "
             "normally batched)",
    )
    p_explore.add_argument(
        "--workers", type=int, default=None,
        help="pool size for the process executor and for the batched "
             "executor's group submissions",
    )

    p_profile = sub.add_parser(
        "profile", help="per-stage simulate() timing breakdown"
    )
    p_profile.add_argument("networks", nargs="?", default="vgg-s")
    p_profile.add_argument("mappings", nargs="?", default="KN,CN,CK,PQ")
    p_profile.add_argument("--cache-dir", default=None, metavar="DIR")
    p_profile.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="also export every captured span as Chrome trace-event "
             "JSON (chrome://tracing, Perfetto)",
    )

    p_serve = sub.add_parser(
        "serve",
        help="run the evaluation service (repro.serve) on a Unix socket",
    )
    p_serve.add_argument(
        "--socket", metavar="PATH", default=None,
        help="Unix socket to listen on (default: REPRO_SERVE_SOCKET, "
             "else <cache-root>/serve.sock)",
    )
    p_serve.add_argument(
        "--serve-workers", type=int, default=None, metavar="N",
        help="evaluation worker processes (default: REPRO_SERVE_WORKERS, "
             "else 2)",
    )
    _add_config_flags(p_serve)

    p_submit = sub.add_parser(
        "submit",
        help="submit one request to a running server; prints result JSON",
    )
    p_submit.add_argument(
        "target", nargs="?", default=None,
        help="experiment id (see `list`), or evaluator name with "
             "--kind point",
    )
    p_submit.add_argument(
        "--kind", choices=("experiment", "point"), default="experiment",
        help="request kind (default: experiment)",
    )
    p_submit.add_argument(
        "--params", metavar="JSON", default=None,
        help="request parameters as a JSON object",
    )
    p_submit.add_argument("--seed", type=int, default=None)
    p_submit.add_argument(
        "--socket", metavar="PATH", default=None,
        help="server socket (default: REPRO_SERVE_SOCKET, else "
             "<cache-root>/serve.sock)",
    )
    p_submit.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="cache root, used only to resolve the default socket path",
    )
    p_submit.add_argument(
        "--timeout", type=float, default=600.0, metavar="SECONDS",
        help="how long to wait for the result (default: 600)",
    )
    p_submit.add_argument(
        "--stats", action="store_true",
        help="print the server's /stats payload instead of submitting",
    )
    p_submit.add_argument(
        "--shutdown", action="store_true",
        help="ask the server to stop (drains in-flight jobs first)",
    )

    # campaign keeps its dedicated parser (parse_campaign_args); main()
    # forwards its raw arguments, so it is registered here only for the
    # top-level help listing.
    sub.add_parser(
        "campaign",
        help="train -> measured trajectory -> replay (see campaign --smoke)",
        add_help=False,
    )

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; ``argv`` is ``sys.argv``-shaped (argv[0] is the
    program name).  Returns the process exit code."""
    tokens = list(sys.argv if argv is None else argv)[1:]
    if not tokens:
        tokens = ["all"]
    if tokens[0] == "campaign":
        # The campaign subcommand owns its flag vocabulary
        # (parse_campaign_args) — forward everything verbatim.
        start = time.time()
        try:
            run_campaign_subcommand(*tokens[1:])
        except (KeyError, ValueError) as error:
            print(f"campaign: {error}")
            return 2
        print(f"\ndone in {time.time() - start:.1f}s")
        return 0
    parser = build_parser()
    try:
        args = parser.parse_args(tokens)
    except SystemExit as exit_:  # --help/--version (0) or usage error (2)
        code = exit_.code
        return code if isinstance(code, int) else 0 if code is None else 2
    if args.command is None:
        args = parser.parse_args(["all"])

    # The service commands own their output shape: serve blocks until
    # shutdown, submit prints pure (pipeable) JSON — no timing banner.
    if args.command == "serve":
        try:
            run_serve_cli(
                _config_from_args(args),
                socket_path=args.socket,
                serve_workers=args.serve_workers,
            )
        except (ValueError, RuntimeError) as error:
            print(f"serve: {error}", file=sys.stderr)
            return 2
        return 0
    if args.command == "submit":
        return run_submit_cli(args)

    start = time.time()
    try:
        if args.command == "list":
            run_list(args.family)
            return 0
        if args.command == "run":
            config = _config_from_args(args)
            with config_scope(config):
                run_experiment_cli(
                    args.experiment, config, export_dir=args.export
                )
                _finish_telemetry(config)
        elif args.command in ("all", "arch", "training", "tables", "beyond"):
            config = _config_from_args(args)
            families = (
                ("tables", "arch", "beyond", "training")
                if args.command == "all"
                else (args.command,)
            )
            with config_scope(config):
                for family in families:
                    _run_family(family, config)
                _finish_telemetry(config)
        elif args.command == "export":
            run_export(args.directory)
        elif args.command == "explore":
            run_explore_cli(
                *(
                    [str(args.budget), args.strategy,
                     "--cache-dir", args.cache_dir,
                     "--objective", args.objective]
                    + (["--executor", args.executor] if args.executor else [])
                    + (["--workers", str(args.workers)]
                       if args.workers is not None else [])
                )
            )
        elif args.command == "profile":
            run_profile_cli(
                *(
                    [args.networks, args.mappings]
                    + (["--cache-dir", args.cache_dir] if args.cache_dir else [])
                    + (["--trace-out", args.trace_out] if args.trace_out else [])
                )
            )
    except (KeyError, ValueError) as error:
        print(f"{args.command}: {error}")
        return 2
    print(f"\ndone in {time.time() - start:.1f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
