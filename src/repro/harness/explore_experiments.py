"""Design-space exploration driver (``python -m repro.harness explore``).

Where the other harness modules regenerate fixed figures, this one
runs the :mod:`repro.explore` search over a paper-anchored design
space: the four spatial mappings x array sides 8-32 x GLB 64-256 KiB x
register files 512-2048 B x the Figure 16 sparsity factors, screened
by the fabric-area, mask-residency, and tiling-pressure constraints.
The output is the latency/energy/area Pareto frontier — the automated
version of the paper's "energy barely moves, so pick the fastest
feasible mapping" argument, now with the architecture knobs in play.

Two objectives are available.  The default ``iteration`` objective
evaluates one static analytic iteration per candidate
(``design-point``); the ``trajectory`` objective replays a *measured*
training campaign (``trajectory-point``), optimizing whole-run
latency/energy — the training is shared across all candidates through
the trajectory store, so the search trains once and replays many
times.

Evaluations run through the sweep cache, so a second invocation
against the same cache directory replays from disk in a fraction of
the cold time.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.api.config import RuntimeConfig, config_scope, get_config
from repro.explore import (
    DEFAULT_OBJECTIVES,
    ExploreResult,
    Explorer,
    GreedyRefineStrategy,
    SearchSpace,
    TRAJECTORY_OBJECTIVES,
    fabric_fraction_limit,
    make_strategy,
    mask_residency_limit,
    tiling_chunk_limit,
)
from repro.harness.common import render_table
from repro.report.ascii_plot import scatter_plot
__all__ = [
    "default_space",
    "format_frontier",
    "run_explore",
    "trajectory_space",
]

#: objective name -> (sweep evaluator, objective keys)
OBJECTIVES = {
    "iteration": ("design-point", DEFAULT_OBJECTIVES),
    "trajectory": ("trajectory-point", TRAJECTORY_OBJECTIVES),
}


def default_space(network: str = "vgg-s") -> SearchSpace:
    """The paper-anchored search space (see module docstring)."""
    return SearchSpace(
        {
            "mapping": ["PQ", "CK", "CN", "KN"],
            "array_side": [8, 16, 32],
            "glb_kib": [64, 128, 256],
            "rf_bytes": [512, 1024, 2048],
            "sparsity_factor": [2.9, 5.8, 11.7],
        },
        fixed={"network": network, "sparse": True},
        constraints=[
            fabric_fraction_limit(0.35),
            mask_residency_limit(),
            tiling_chunk_limit(128),
        ],
    )


def trajectory_space(
    model: str = "vgg-s", epochs: int = 4, seed: int = 1
) -> SearchSpace:
    """The hardware space searched under a measured trajectory.

    Same hardware knobs and constraints as :func:`default_space`, but
    every candidate embeds one fixed training recipe (a small campaign
    under common random numbers), so candidates differ only in the
    architecture the shared trajectory is replayed on.
    """
    return SearchSpace(
        {
            "mapping": ["PQ", "CK", "CN", "KN"],
            "array_side": [8, 16, 32],
            "glb_kib": [64, 128, 256],
            "rf_bytes": [512, 1024, 2048],
        },
        fixed={
            "model": model,
            "network": model,  # analytic stand-in for the constraints
            "sparse": True,
            "epochs": epochs,
            "campaign_seed": seed,
        },
        constraints=[
            fabric_fraction_limit(0.35),
            mask_residency_limit(),
            tiling_chunk_limit(128),
        ],
    )


def run_explore(
    budget: int = 120,
    strategy: str = "greedy",
    network: str = "vgg-s",
    seed: int = 0,
    cache_dir: str | None = None,
    executor: str | None = None,
    workers: int | None = None,
    objective: str = "iteration",
    config: RuntimeConfig | None = None,
) -> ExploreResult:
    """Search the design space and return the Pareto frontier.

    The default strategy spends most of the budget on random coverage
    and the rest refining the frontier's neighborhood; ``grid`` and
    ``random`` are also accepted (see
    :func:`repro.explore.make_strategy`).  ``objective`` picks the
    evaluation: ``iteration`` (static analytic profile, per-iteration
    cost) or ``trajectory`` (measured campaign, whole-run cost).

    ``cache_dir``/``executor``/``workers`` layer on top of ``config``
    (default: the active :class:`~repro.api.config.RuntimeConfig`)
    when given — ``None`` keeps the config's own value — and the
    combined config is scoped around the whole search, so every
    on-disk tier roots under one directory — see :func:`cache_tiers`.
    """
    try:
        evaluator, objectives = OBJECTIVES[objective]
    except KeyError:
        raise KeyError(
            f"unknown objective {objective!r}; "
            f"choose from {sorted(OBJECTIVES)}"
        ) from None
    if strategy == "greedy":
        proposer = GreedyRefineStrategy(
            n_init=max(1, (4 * budget) // 5), max_rounds=16
        )
    elif strategy == "random":
        proposer = make_strategy("random", n_samples=budget)
    else:
        proposer = make_strategy(strategy)
    base = config if config is not None else get_config()
    if cache_dir:
        base = base.with_(
            cache_root=str(cache_dir),
            evalcore_cache_dir=None,
            campaign_cache_dir=None,
        )
    if executor is not None:
        base = base.with_(executor=executor)
    if workers is not None:
        base = base.with_(workers=workers)
    cache = base.sweep_cache()
    space = (
        trajectory_space(network)
        if objective == "trajectory"
        else default_space(network)
    )
    with config_scope(base) as scoped:
        explorer = Explorer(
            evaluator=evaluator,
            objectives=objectives,
            cache=cache,
            executor=scoped.executor,
            workers=scoped.workers,
            config=scoped,
        )
        return explorer.run(
            space,
            proposer,
            budget=budget,
            seed=seed,
            name=f"explore-{objective}-{network}",
        )


@contextmanager
def cache_tiers(cache_dir: str | None):
    """Route every on-disk tier under one ``cache_dir`` for a block.

    A thin :func:`repro.api.config.config_scope` wrapper setting
    ``cache_root`` — the scoped config derives

    * the evaluation core's layer-level working-set tier
      (``<cache_dir>/evalcore``) — candidates that share (layer,
      phase, mapping, geometry) share set building across runs;
    * the campaign trajectory store (``<cache_dir>/campaign``) —
      trajectory-objective candidates (and the ``campaign`` evaluator)
      share one training run per recipe.

    No environment variable is touched: process-pool workers receive
    the same config by pickle through the sweep runner, and all prior
    process state (active config, default memo) is restored on exit.
    """
    if not cache_dir:
        yield None
        return
    with config_scope(
        get_config().with_(
            cache_root=str(cache_dir),
            evalcore_cache_dir=None,
            campaign_cache_dir=None,
        )
    ) as scoped:
        yield scoped


def format_frontier(result: ExploreResult) -> str:
    """Frontier table plus objective-plane scatter views."""
    rows = result.frontier_rows()
    headers = list(rows[0]) if rows else []
    parts = [
        f"{result.name}: {len(result.frontier)} non-dominated of "
        f"{result.n_evaluated} evaluated ({result.n_cached} cached), "
        f"{result.n_rounds} rounds, {result.wall_time_s:.1f}s",
        f"hypervolume (self-referenced): {result.frontier.hypervolume():.4g}",
    ]
    if result.budget_exhausted:
        parts.append(
            "note: stopped at the evaluation budget — the strategy had "
            "(or may have had) more candidates; the frontier may be "
            "partial. Raise the budget to search further."
        )
    parts += [
        "",
        render_table(headers, [[row[h] for h in headers] for row in rows]),
    ]
    columns = result.objective_columns()
    frontier_points = result.frontier_points()
    keys = [o.key for o in result.objectives]
    for x_key, y_key in [(keys[0], k) for k in keys[1:3]]:
        frontier_xy = (
            [float(p.values[x_key]) for p in frontier_points],
            [float(p.values[y_key]) for p in frontier_points],
        )
        parts.append("")
        parts.append(
            scatter_plot(
                {
                    "evaluated": (columns[x_key], columns[y_key]),
                    "frontier": frontier_xy,
                },
                title=f"{y_key} vs {x_key}",
                x_label=x_key,
                y_label=y_key,
            )
        )
    return "\n".join(parts)
