"""Experiment drivers: one per table and figure of the paper.

The :mod:`repro.api` experiment registry is the supported catalogue
over these drivers — ``repro.api.get_experiment("fig18-19").run(config)``
dispatches to the same entry functions, bit-identically.  The
historical direct imports (``from repro.harness import
run_fig01_potential``) still resolve, but lazily and with a
:class:`DeprecationWarning` — new code should go through the registry.
The building blocks (:mod:`repro.harness.common`, the tables module,
``train_mini``) remain plain, warning-free exports.
"""

import importlib

from repro.harness.common import (
    dense_profile_for,
    histogram_fractions,
    model_entry,
    render_table,
    sparse_profile_for,
)
from repro.harness.tables import (
    format_table2,
    format_table3,
    run_table2,
    run_table3,
)
from repro.harness.training_experiments import train_mini

#: Legacy re-exports, resolved lazily through each owning module's
#: deprecation shim (importing one from here warns exactly once, at
#: access time, with the registry alternative in the message).
_LAZY = {
    "format_fig01": "repro.harness.arch_experiments",
    "format_fig17": "repro.harness.arch_experiments",
    "format_fig18": "repro.harness.arch_experiments",
    "format_fig19": "repro.harness.arch_experiments",
    "format_fig20": "repro.harness.arch_experiments",
    "format_histogram": "repro.harness.arch_experiments",
    "run_fig01_potential": "repro.harness.arch_experiments",
    "run_fig17_energy_breakdown": "repro.harness.arch_experiments",
    "run_fig18_fig19_dataflows": "repro.harness.arch_experiments",
    "run_fig20_scalability": "repro.harness.arch_experiments",
    "run_imbalance_histogram": "repro.harness.arch_experiments",
    "format_curves": "repro.harness.training_experiments",
    "run_fig06_decay": "repro.harness.training_experiments",
    "run_fig07_quantile": "repro.harness.training_experiments",
    "run_fig15_cifar_curves": "repro.harness.training_experiments",
    "run_fig16_sparsity_sweep": "repro.harness.training_experiments",
}


def __getattr__(name: str):
    target = _LAZY.get(name)
    if target is None:
        raise AttributeError(
            f"module 'repro.harness' has no attribute {name!r}"
        )
    return getattr(importlib.import_module(target), name)


def __dir__():
    return sorted(set(globals()) | set(_LAZY))


__all__ = [
    "dense_profile_for",
    "histogram_fractions",
    "model_entry",
    "render_table",
    "sparse_profile_for",
    "format_table2",
    "format_table3",
    "run_table2",
    "run_table3",
    "train_mini",
] + sorted(_LAZY)
