"""Experiment drivers: one per table and figure of the paper.

The :mod:`repro.api` experiment registry is the catalogue over these
drivers — ``repro.api.get_experiment("fig18-19").run(config)``
dispatches to the same ``run_*`` functions re-exported here, so both
entry points stay bit-identical.  The direct imports below are kept as
a stable (legacy) surface; new code should prefer the registry.
"""

from repro.harness.arch_experiments import (
    format_fig01,
    format_fig17,
    format_fig18,
    format_fig19,
    format_fig20,
    format_histogram,
    run_fig01_potential,
    run_fig17_energy_breakdown,
    run_fig18_fig19_dataflows,
    run_fig20_scalability,
    run_imbalance_histogram,
)
from repro.harness.common import (
    dense_profile_for,
    histogram_fractions,
    model_entry,
    render_table,
    sparse_profile_for,
)
from repro.harness.tables import (
    format_table2,
    format_table3,
    run_table2,
    run_table3,
)
from repro.harness.training_experiments import (
    format_curves,
    run_fig06_decay,
    run_fig07_quantile,
    run_fig15_cifar_curves,
    run_fig16_sparsity_sweep,
    train_mini,
)

__all__ = [
    "format_fig01",
    "format_fig17",
    "format_fig18",
    "format_fig19",
    "format_fig20",
    "format_histogram",
    "run_fig01_potential",
    "run_fig17_energy_breakdown",
    "run_fig18_fig19_dataflows",
    "run_fig20_scalability",
    "run_imbalance_histogram",
    "dense_profile_for",
    "histogram_fractions",
    "model_entry",
    "render_table",
    "sparse_profile_for",
    "format_table2",
    "format_table3",
    "run_table2",
    "run_table3",
    "format_curves",
    "run_fig06_decay",
    "run_fig07_quantile",
    "run_fig15_cifar_curves",
    "run_fig16_sparsity_sweep",
    "train_mini",
]
