"""``python -m repro.harness profile`` — where does simulate() spend time?

Times one :func:`repro.dataflow.simulator.simulate` call per requested
(network, mapping) condition and prints a per-stage breakdown:

* **sets** — working-set construction (sampling + tiling), excluding
  the balancing step below;
* **balance** — half-tile / chip-wide load balancing inside set
  building (measured by wrapping
  :func:`repro.dataflow.loadbalance.balance_sets` at its call site in
  :mod:`repro.dataflow.tiling`);
* **energy** — the energy roll-up fed from the shared sets;
* plus the cold wall time, a warm (memoized) re-run, and the memo's
  hit counters — so performance work on the hot path stays observable
  without a profiler in hand.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator

from repro.harness.common import model_entry, render_table, sparse_profile_for

__all__ = ["run_profile", "format_profile"]

DEFAULT_MAPPINGS = ("KN", "CN", "CK", "PQ")


@contextmanager
def _timed_balance(timings) -> Iterator[None]:
    """Route tiling's balance_sets calls through a stage timer."""
    import repro.dataflow.tiling as tiling

    original = tiling.balance_sets

    def wrapper(work, rng, *args, **kwargs):
        start = time.perf_counter()
        try:
            return original(work, rng, *args, **kwargs)
        finally:
            timings.add("balance", time.perf_counter() - start)

    tiling.balance_sets = wrapper
    try:
        yield
    finally:
        tiling.balance_sets = original


def run_profile(
    networks: tuple[str, ...] = ("vgg-s",),
    mappings: tuple[str, ...] = DEFAULT_MAPPINGS,
    seed: int = 0,
    cache_dir: str | None = None,
    config=None,
) -> list[dict[str, float | str]]:
    """Profile one ``simulate()`` per (network, mapping); return rows.

    With ``cache_dir`` (or a :class:`repro.api.config.RuntimeConfig`
    naming an evalcore tier), each fresh memo is backed by the
    evaluation core's on-disk tier under ``<cache_dir>/evalcore`` —
    the same layout the ``explore`` subcommand roots there — so a
    profiled condition warms future explorer/sweep runs (and vice
    versa; a primed directory shows up here as disk hits on the
    "cold" pass).
    """
    from pathlib import Path

    from repro.api.config import get_config
    from repro.dataflow.evalcore import (
        EvalMemo,
        EvalTimings,
        evaluate_network,
    )
    from repro.hw.config import PROCRUSTES_16x16
    from repro.hw.energy import DEFAULT_ENERGY_TABLE

    active = config if config is not None else get_config()
    if cache_dir:
        disk_root = str(Path(cache_dir) / "evalcore")
    else:
        disk_root = active.effective_evalcore_cache_dir()
    # Each condition gets a *fresh* memo on purpose (the cold/warm
    # split is the point of this command), but its capacity and the
    # sampling mode honor the configuration being profiled.
    memo_size = max(1, active.evalcore_memo_size)
    rows: list[dict[str, float | str]] = []
    for network in networks:
        profile = sparse_profile_for(network)
        n = model_entry(network).minibatch
        for mapping in mappings:
            # Fresh per condition: the cold/warm split stays meaningful.
            memo = EvalMemo(maxsize=memo_size, disk_root=disk_root)
            timings = EvalTimings()
            start = time.perf_counter()
            with _timed_balance(timings):
                evaluation = evaluate_network(
                    profile,
                    mapping,
                    PROCRUSTES_16x16,
                    n,
                    table=DEFAULT_ENERGY_TABLE,
                    seed=seed,
                    memo=memo,
                    timings=timings,
                    config=active,
                )
            cold_s = time.perf_counter() - start
            start = time.perf_counter()
            evaluate_network(
                profile,
                mapping,
                PROCRUSTES_16x16,
                n,
                table=DEFAULT_ENERGY_TABLE,
                seed=seed,
                memo=memo,
                config=active,
            )
            warm_s = time.perf_counter() - start
            stages = timings.stages
            balance_s = stages.get("balance", 0.0)
            rows.append(
                {
                    "network": network,
                    "mapping": mapping,
                    "cold_s": cold_s,
                    "sets_s": stages.get("sets", 0.0) - balance_s,
                    "balance_s": balance_s,
                    "energy_s": stages.get("energy", 0.0),
                    "warm_s": warm_s,
                    "memo_hits": memo.stats.hits,
                    "total_cycles": evaluation.total_cycles,
                }
            )
    return rows


def format_profile(rows: list[dict[str, float | str]]) -> str:
    headers = [
        "network",
        "mapping",
        "cold_s",
        "sets_s",
        "balance_s",
        "energy_s",
        "warm_s",
        "memo_hits",
        "total_cycles",
    ]
    return render_table(headers, [[row[h] for h in headers] for row in rows])
