"""``python -m repro.harness profile`` — where does simulate() spend time?

Times one :func:`repro.dataflow.simulator.simulate` call per requested
(network, mapping) condition and prints a per-stage breakdown:

* **sets** — working-set construction (sampling + tiling), excluding
  the balancing step below;
* **balance** — half-tile / chip-wide load balancing inside set
  building (measured by wrapping
  :func:`repro.dataflow.loadbalance.balance_sets` at its call site in
  :mod:`repro.dataflow.tiling`);
* **energy** — the energy roll-up fed from the shared sets;
* plus the cold wall time, a warm (memoized) re-run, and the memo's
  hit counters — so performance work on the hot path stays observable
  without a profiler in hand.

The stage numbers come from :mod:`repro.obs.trace` spans: each pass
runs under :func:`repro.obs.trace.capture`, the evaluation core's own
``evalcore.sets`` / ``evalcore.energy`` spans are summed per stage,
and ``trace_out`` (CLI ``--trace-out``) exports everything captured as
one Chrome-loadable trace for ``chrome://tracing`` / Perfetto.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator

from repro.harness.common import model_entry, render_table, sparse_profile_for
from repro.obs import trace as _trace

__all__ = ["run_profile", "format_profile"]

DEFAULT_MAPPINGS = ("KN", "CN", "CK", "PQ")


@contextmanager
def _timed_balance() -> Iterator[None]:
    """Route tiling's balance_sets calls through their own span."""
    import repro.dataflow.tiling as tiling

    original = tiling.balance_sets

    def wrapper(work, rng, *args, **kwargs):
        with _trace.span("evalcore.balance"):
            return original(work, rng, *args, **kwargs)

    tiling.balance_sets = wrapper
    try:
        yield
    finally:
        tiling.balance_sets = original


def _stage_seconds(spans: list[dict[str, Any]], name: str) -> float:
    return sum(s["dur"] for s in spans if s["name"] == name)


def run_profile(
    networks: tuple[str, ...] = ("vgg-s",),
    mappings: tuple[str, ...] = DEFAULT_MAPPINGS,
    seed: int = 0,
    cache_dir: str | None = None,
    config=None,
    trace_out: str | None = None,
) -> list[dict[str, float | str]]:
    """Profile one ``simulate()`` per (network, mapping); return rows.

    With ``cache_dir`` (or a :class:`repro.api.config.RuntimeConfig`
    naming an evalcore tier), each fresh memo is backed by the
    evaluation core's on-disk tier under ``<cache_dir>/evalcore`` —
    the same layout the ``explore`` subcommand roots there — so a
    profiled condition warms future explorer/sweep runs (and vice
    versa; a primed directory shows up here as disk hits on the
    "cold" pass).

    ``trace_out`` additionally writes every captured span (cold and
    warm passes, all conditions) as one Chrome trace-event JSON file.
    """
    from pathlib import Path

    from repro.api.config import get_config
    from repro.dataflow.evalcore import EvalMemo, evaluate_network
    from repro.hw.config import PROCRUSTES_16x16
    from repro.hw.energy import DEFAULT_ENERGY_TABLE

    active = config if config is not None else get_config()
    if cache_dir:
        disk_root = str(Path(cache_dir) / "evalcore")
    else:
        disk_root = active.effective_evalcore_cache_dir()
    # Each condition gets a *fresh* memo on purpose (the cold/warm
    # split is the point of this command), but its capacity and the
    # sampling mode honor the configuration being profiled.
    memo_size = max(1, active.evalcore_memo_size)
    rows: list[dict[str, float | str]] = []
    collected: list[dict[str, Any]] = []
    for network in networks:
        profile = sparse_profile_for(network)
        n = model_entry(network).minibatch
        for mapping in mappings:
            # Fresh per condition: the cold/warm split stays meaningful.
            memo = EvalMemo(maxsize=memo_size, disk_root=disk_root)
            # Cold and warm passes capture into separate buffers so the
            # stage sums come from the cold walk only (the warm pass
            # re-enters the same spans, but as memo-served no-ops).
            with _trace.capture() as cold_buf:
                with _trace.span(
                    "profile.cold", network=network, mapping=mapping
                ), _timed_balance():
                    evaluation = evaluate_network(
                        profile,
                        mapping,
                        PROCRUSTES_16x16,
                        n,
                        table=DEFAULT_ENERGY_TABLE,
                        seed=seed,
                        memo=memo,
                        config=active,
                    )
            with _trace.capture() as warm_buf:
                with _trace.span(
                    "profile.warm", network=network, mapping=mapping
                ):
                    evaluate_network(
                        profile,
                        mapping,
                        PROCRUSTES_16x16,
                        n,
                        table=DEFAULT_ENERGY_TABLE,
                        seed=seed,
                        memo=memo,
                        config=active,
                    )
            cold_spans = cold_buf.spans()
            warm_spans = warm_buf.spans()
            collected.extend(cold_spans)
            collected.extend(warm_spans)
            cold_s = _stage_seconds(cold_spans, "profile.cold")
            balance_s = _stage_seconds(cold_spans, "evalcore.balance")
            rows.append(
                {
                    "network": network,
                    "mapping": mapping,
                    "cold_s": cold_s,
                    "sets_s": (
                        _stage_seconds(cold_spans, "evalcore.sets")
                        - balance_s
                    ),
                    "balance_s": balance_s,
                    "energy_s": _stage_seconds(cold_spans, "evalcore.energy"),
                    "warm_s": _stage_seconds(warm_spans, "profile.warm"),
                    "memo_hits": memo.stats.hits,
                    "total_cycles": evaluation.total_cycles,
                }
            )
    if trace_out is not None:
        _trace.write_chrome_trace(trace_out, collected)
    return rows


def format_profile(rows: list[dict[str, float | str]]) -> str:
    headers = [
        "network",
        "mapping",
        "cold_s",
        "sets_s",
        "balance_s",
        "energy_s",
        "warm_s",
        "memo_hits",
        "total_cycles",
    ]
    return render_table(headers, [[row[h] for h in headers] for row in rows])
