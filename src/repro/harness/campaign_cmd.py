"""``python -m repro.harness campaign`` — train, record, replay, report.

The command-line face of :mod:`repro.campaign`: run (or load) one
training campaign, replay its measured density trajectory through the
accelerator model, print the per-epoch latency/energy/accuracy view,
and export the trajectory artifact through :mod:`repro.report`.

The exported record is **deterministic** — it contains no wall-clock
or host-dependent fields — and the command prints its SHA-256, so two
runs of the same spec must print the same hash.  The nightly CI
workflow runs ``campaign --smoke`` twice and diffs exactly that line.
"""

from __future__ import annotations

import hashlib
from pathlib import Path

from repro.campaign import (
    CampaignSpec,
    ReplayResult,
    TrajectoryStore,
    replay_trajectory,
    run_campaign,
)
from repro.harness.common import render_table
from repro.report.ascii_plot import line_plot
from repro.report.export import ResultsDirectory
from repro.sweep.spec import canonical_json

__all__ = ["format_replay", "parse_campaign_args", "run_campaign_cli"]


def parse_campaign_args(args: list[str]) -> dict:
    """Parse the subcommand's ``--flag value`` (and ``--smoke``) args.

    ``options["given"]`` records which flags were explicitly passed, so
    :func:`build_spec` can apply them as overrides on top of the smoke
    recipe instead of silently discarding them.
    """
    options: dict = {
        "smoke": False,
        "model": "vgg-s",
        "mode": "procrustes",
        "epochs": 6,
        "sparsity_factor": 5.0,
        "seed": 0,
        "mapping": "KN",
        "cache_dir": None,
        "out": "results",
        "given": set(),
    }
    it = iter(args)
    for token in it:
        if token == "--smoke":
            options["smoke"] = True
            continue
        if not token.startswith("--"):
            raise ValueError(f"unexpected argument {token!r}")
        name = token[2:].replace("-", "_")
        if name == "given" or name not in options:
            raise ValueError(f"unknown flag {token!r}")
        try:
            raw = next(it)
        except StopIteration:
            raise ValueError(f"flag {token!r} needs a value") from None
        current = options[name]
        options[name] = (
            type(current)(raw) if current is not None else raw
        )
        options["given"].add(name)
    return options


def build_spec(options: dict) -> CampaignSpec:
    if options["smoke"]:
        spec = CampaignSpec.smoke(seed=int(options["seed"]))
        # Explicit campaign flags override the smoke recipe rather
        # than being silently dropped.
        overrides = {
            name: options[name]
            for name in ("model", "mode", "epochs", "sparsity_factor")
            if name in options["given"]
        }
        return spec.with_(**overrides) if overrides else spec
    return CampaignSpec(
        model=options["model"],
        mode=options["mode"],
        epochs=int(options["epochs"]),
        sparsity_factor=float(options["sparsity_factor"]),
        seed=int(options["seed"]),
    )


def format_replay(replay: ReplayResult, spec: CampaignSpec) -> str:
    """The per-epoch table plus curves (what the subcommand prints)."""
    curves = replay.curves()
    headers = [
        "epoch",
        "iterations",
        "cycles/iter",
        "J/iter",
        "epoch cycles",
        "epoch J",
        "val acc",
        "sparsity x",
    ]
    rows = [
        [
            cost.epoch,
            cost.iterations,
            cost.cycles_per_iteration,
            cost.energy_j_per_iteration,
            cost.cycles,
            cost.energy_j,
            cost.val_accuracy,
            cost.achieved_sparsity,
        ]
        for cost in replay.epochs
    ]
    parts = [
        f"campaign {spec.model}/{spec.mode}: {spec.epochs} epochs, "
        f"target sparsity {spec.sparsity_factor:g}x, seed {spec.seed}",
        f"replayed on {replay.arch} / {replay.mapping}, n={replay.n}",
        "",
        render_table(headers, rows),
    ]
    if len(replay.epochs) >= 3:
        parts.append(
            line_plot(
                {"cycles/iteration": curves["cycles_per_iteration"]},
                title="per-iteration latency along the training trajectory",
            )
        )
        parts.append(
            line_plot(
                {"val accuracy": curves["val_accuracy"]},
                title="validation accuracy over epochs",
            )
        )
    parts.append(
        f"whole run: {replay.run_cycles:.6g} cycles, "
        f"{replay.run_energy_j:.6g} J over "
        f"{replay.total_iterations} iterations"
    )
    return "\n".join(parts)


def run_campaign_cli(args: list[str]) -> str:
    """Execute the subcommand; returns the deterministic artifact hash."""
    options = parse_campaign_args(args)
    spec = build_spec(options)
    if options["cache_dir"]:
        store = TrajectoryStore(Path(options["cache_dir"]) / "campaign")
    else:
        # Honor the active RuntimeConfig (which layers the documented
        # REPRO_CAMPAIGN_CACHE_DIR knob), exactly like the sweep
        # evaluators and trajectory_source_for do.
        store = TrajectoryStore.from_config()
    result = run_campaign(spec, store=store)
    origin = "trajectory store (cache hit)" if result.cached else "training"
    print(f"campaign key {spec.key()[:16]}… from {origin}")
    replay = replay_trajectory(
        result.trajectory,
        mapping=options["mapping"],
        n=spec.batch_size,
        sparse=spec.mode != "sgd",
        seed=spec.seed,
    )
    print(format_replay(replay, spec))
    record = replay.to_record()
    digest = hashlib.sha256(canonical_json(record).encode()).hexdigest()
    results = ResultsDirectory(options["out"])
    replay.save(results)
    artifact = results.path_for(record["experiment"], "record.json")
    print(f"\nwrote {artifact}")
    print(f"artifact sha256: {digest}")
    return digest
