"""Experiment drivers for the beyond-the-paper analyses.

These drivers expose, through the CLI (``python -m repro.harness
beyond``), the quantitative versions of arguments the paper makes
qualitatively:

* Section II-D — sparse-format access costs (CSB vs. EIE vs. SCNN);
* intro claims (i)-(iii) — schedule/footprint survey of all methods;
* Section IV-C — interconnect options priced vs. array size;
* Section VII-A — the Eager Pruning dataflow head-to-head;
* cycle-level validation of the analytical latency model.

Each ``run_*`` returns plain data; each ``format_*`` renders it for
the terminal.  The benches under ``benchmarks/`` assert the claims;
these drivers only present them.
"""

from __future__ import annotations

import numpy as np

from repro.core.schedules import PAPER_SCHEDULES
from repro.dataflow.eager_accel import EagerPruningAccelerator, sorting_cycles
from repro.harness._deprecation import install_shims as _install_shims
from repro.harness.common import render_table
from repro.hw.config import PROCRUSTES_16x16
from repro.hw.cyclesim import CycleLevelSimulator, IDEAL_FABRIC
from repro.hw.memory import training_footprint, weight_footprint
from repro.models.zoo import get_specs
from repro.sparse.rivals import access_costs
from repro.sweep import ResultCache, SweepSpec, run_sweep

__all__ = [
    "run_format_costs",
    "format_format_costs",
    "run_schedule_survey",
    "format_schedule_survey",
    "run_fabric_pricing",
    "format_fabric_pricing",
    "run_eager_comparison",
    "format_eager_comparison",
]


# ----------------------------------------------------------------------
# Section II-D: format access costs
# ----------------------------------------------------------------------
def run_format_costs(seed: int = 7, density: float = 0.19):
    rng = np.random.default_rng(seed)
    conv = rng.normal(size=(64, 64, 3, 3))
    conv[rng.uniform(size=conv.shape) > density] = 0.0
    fc = rng.normal(size=(256, 128))
    fc[rng.uniform(size=fc.shape) > density] = 0.0
    return {"conv": access_costs(conv), "fc": access_costs(fc)}


def format_format_costs(results) -> str:
    rows = []
    for layer, table in results.items():
        for c in table:
            rows.append(
                [
                    layer,
                    c.format_name,
                    c.forward,
                    c.backward,
                    f"{c.backward_penalty:.2f}",
                    f"{c.storage_bits / 1024:.1f}",
                    "yes" if c.updatable else "no",
                ]
            )
    return render_table(
        ["layer", "format", "fw", "bw", "bw/fw", "KB", "in-place wu"], rows
    )


# ----------------------------------------------------------------------
# Intro claims: schedule survey
# ----------------------------------------------------------------------
def run_schedule_survey(
    network: str = "resnet18", total_iterations: int = 90 * 5_005
):
    specs = get_specs(network)
    weight_count = sum(s.weight_count for s in specs)
    rows = {}
    for name, schedule in PAPER_SCHEDULES.items():
        wf = weight_footprint(schedule, weight_count, total_iterations)
        tf = training_footprint(
            schedule, specs, n=64, total_iterations=total_iterations
        )
        rows[name] = {
            "avg_density": schedule.average_density(total_iterations),
            "peak_reduction": wf.peak_reduction,
            "switch_at": wf.switch_iteration,
            "weight_mb": (tf.weight_peak_bits + tf.optimizer_state_bits) / 8e6,
            "total_mb": tf.total_bits / 8e6,
        }
    return rows


def format_schedule_survey(rows) -> str:
    table = []
    for name, row in rows.items():
        switch = (
            "never" if row["switch_at"] is None else f"@{row['switch_at']:,}"
        )
        table.append(
            [
                name,
                f"{row['avg_density']:.3f}",
                f"{row['peak_reduction']:.2f}x",
                switch,
                f"{row['weight_mb']:.1f}",
                f"{row['total_mb']:.1f}",
            ]
        )
    return render_table(
        [
            "method", "avg density", "peak redux", "format switch",
            "wgt+state MB", "total MB",
        ],
        table,
    )


# ----------------------------------------------------------------------
# Section IV-C: fabric pricing
# ----------------------------------------------------------------------
def run_fabric_pricing(
    sides=(8, 16, 32, 64),
    cache: ResultCache | None = None,
    executor: str = "serial",
    workers: int | None = None,
    config=None,
):
    """Area fraction of each interconnect option per array size."""
    spec = SweepSpec.grid(
        "fabric-pricing", "fabric-cost", {"side": list(sides)}
    )
    sweep = run_sweep(
        spec, cache=cache, executor=executor, workers=workers, config=config
    )
    return {
        int(point.params["side"]): {
            name: option["fraction"]
            for name, option in point.values["options"].items()
        }
        for point in sweep.points
    }


def format_fabric_pricing(table) -> str:
    names = next(iter(table.values())).keys()
    rows = [
        [f"{side}x{side}"] + [f"{fracs[n]:.1%}" for n in names]
        for side, fracs in table.items()
    ]
    return render_table(["array"] + list(names), rows)


# ----------------------------------------------------------------------
# Section VII-A: Eager Pruning head-to-head
# ----------------------------------------------------------------------
def run_eager_comparison(seed: int = 5):
    rng = np.random.default_rng(seed)
    p = q = 8
    n = 16
    eager = EagerPruningAccelerator(PROCRUSTES_16x16)
    kn = CycleLevelSimulator(PROCRUSTES_16x16, IDEAL_FABRIC)
    rows = {}
    for label, density in (
        ("eager@2.4x", 1 / 2.4),
        ("both@5.2x", 1 / 5.2),
        ("procrustes@11.7x", 1 / 11.7),
    ):
        mask = rng.uniform(size=(64, 64, 3, 3)) < density
        e = eager.run_conv(mask, p=p, q=q, n=n)
        k = kn.run_conv(mask, p=p, q=q, n=n, mapping="KN", balance=True)
        rows[label] = {
            "eager_cycles": e.cycles,
            "eager_util": e.utilization,
            "router_words": e.router_words,
            "kn_cycles": k.cycles,
            "kn_util": k.utilization,
        }
    return rows, sorting_cycles(15_000_000) / 1e6


def format_eager_comparison(rows, sorting_mcycles) -> str:
    table = [
        [
            label,
            f"{row['eager_cycles']:.0f}",
            f"{row['eager_util']:.1%}",
            f"{row['router_words']:.0f}",
            f"{row['kn_cycles']:.0f}",
            f"{row['kn_util']:.1%}",
        ]
        for label, row in rows.items()
    ]
    rendered = render_table(
        ["sparsity", "eager cyc", "util", "router wd", "KN cyc", "util"],
        table,
    )
    return (
        rendered
        + f"\nunaccounted sort per prune round (VGG-S): "
        f"{sorting_mcycles:.1f} Mcycles"
    )


# ----------------------------------------------------------------------
# legacy surface: registry-era deprecation shims.
# ----------------------------------------------------------------------
_ENTRY_POINTS = (
    "run_format_costs",
    "format_format_costs",
    "run_schedule_survey",
    "format_schedule_survey",
    "run_fabric_pricing",
    "format_fabric_pricing",
    "run_eager_comparison",
    "format_eager_comparison",
)
_DEPRECATED, entry_point, __getattr__, __dir__ = _install_shims(
    globals(), _ENTRY_POINTS
)
