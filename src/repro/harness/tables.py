"""Tables I, II and III of the paper.

Table I is the accelerator configuration (the named ``ArchConfig``
constants everything else consumes).  Table II combines paper-scale
model statistics (sizes, MACs — computed from our layer specs and
calibrated profiles) with training outcomes (accuracy parity, achieved
sparsity — from the mini-model runs).  Table III is the silicon cost
inventory with the derived overheads.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.harness.common import model_entry, render_table, sparse_profile_for
from repro.harness.training_experiments import TrainRunResult, train_mini
from repro.hw.area import AreaModel

__all__ = [
    "run_table1",
    "format_table1",
    "Table2Result",
    "run_table2",
    "format_table2",
    "Table3Result",
    "run_table3",
    "format_table3",
]


def run_table1() -> list[dict[str, object]]:
    """Table I: the baseline and Procrustes accelerator configurations.

    These are constants (``repro.hw.config``), returned as rows so the
    registry can print and diff them like any other experiment.
    """
    from dataclasses import asdict

    from repro.hw.config import BASELINE_16x16, PROCRUSTES_16x16

    return [asdict(arch) for arch in (BASELINE_16x16, PROCRUSTES_16x16)]


def format_table1(rows: list[dict[str, object]]) -> str:
    headers = ["parameter"] + [str(row["name"]) for row in rows]
    keys = [k for k in rows[0] if k != "name"]
    table = [[key] + [row[key] for row in rows] for key in keys]
    return (
        "Table I — accelerator configuration\n"
        + render_table(headers, table)
    )


@dataclass
class Table2Result:
    rows: list[dict[str, object]] = field(default_factory=list)
    training: dict[str, tuple[TrainRunResult, TrainRunResult]] = field(
        default_factory=dict
    )


def run_table2(
    networks: tuple[str, ...] | None = None,
    with_training: bool = True,
    epochs: int = 5,
    seed: int = 1,
) -> Table2Result:
    """Reproduce Table II: sizes, MACs, sparsity, accuracy parity.

    Model sizes and MAC counts come from the paper-scale layer specs
    and calibrated profiles; the accuracy columns compare a Procrustes
    mini-run against a dense SGD mini-run on the same synthetic task
    (``with_training=False`` skips them for quick checks).
    """
    from repro.models.zoo import PAPER_MODELS

    networks = networks or tuple(PAPER_MODELS)
    result = Table2Result()
    for network in networks:
        entry = model_entry(network)
        t2 = entry.table2
        specs = entry.specs()
        profile = sparse_profile_for(network, seed=seed)
        dense_size = sum(s.weight_count for s in specs)
        dense_macs = sum(s.macs_per_sample() for s in specs)
        sparse_size = profile.surviving_weights()
        sparse_macs = sum(
            ls.layer.macs_per_sample() * ls.weight_density
            for ls in profile.layers
        )
        row: dict[str, object] = {
            "network": network,
            "dataset": t2.dataset,
            "dense_size": dense_size,
            "dense_macs": dense_macs,
            "sparse_size": sparse_size,
            "sparse_macs": sparse_macs,
            "sparsity": dense_size / sparse_size,
            "paper_dense_size": t2.dense_size,
            "paper_dense_macs": t2.dense_macs,
            "paper_sparse_size": t2.sparse_size,
            "paper_sparse_macs": t2.sparse_macs,
            "paper_sparsity": t2.sparsity_factor,
        }
        if with_training:
            procrustes = train_mini(
                network,
                "procrustes",
                epochs=epochs,
                sparsity_factor=t2.sparsity_factor,
                seed=seed,
            )
            baseline = train_mini(network, "sgd", epochs=epochs, seed=seed)
            result.training[network] = (procrustes, baseline)
            row["mini_dense_acc"] = baseline.final_accuracy
            row["mini_pruned_acc"] = procrustes.final_accuracy
            row["mini_achieved_sparsity"] = procrustes.achieved_sparsity
        result.rows.append(row)
    return result


def format_table2(result: Table2Result) -> str:
    headers = [
        "network",
        "dataset",
        "size",
        "paper",
        "MACs",
        "paper",
        "sparse size",
        "paper",
        "sparse MACs",
        "paper",
        "factor",
        "paper",
    ]
    rows = []
    for r in result.rows:
        rows.append(
            [
                r["network"],
                r["dataset"],
                f"{float(r['dense_size'])/1e6:.2f}M",
                f"{float(r['paper_dense_size'])/1e6:.2f}M",
                f"{float(r['dense_macs'])/1e6:.0f}M",
                f"{float(r['paper_dense_macs'])/1e6:.0f}M",
                f"{float(r['sparse_size'])/1e6:.2f}M",
                f"{float(r['paper_sparse_size'])/1e6:.2f}M",
                f"{float(r['sparse_macs'])/1e6:.0f}M",
                f"{float(r['paper_sparse_macs'])/1e6:.0f}M",
                f"{float(r['sparsity']):.1f}x",
                f"{float(r['paper_sparsity']):.1f}x",
            ]
        )
    out = ["Table II — model statistics (ours vs. paper)"]
    out.append(render_table(headers, rows))
    if result.training:
        out.append("")
        out.append("Accuracy parity on the synthetic stand-in tasks:")
        for network, (procrustes, baseline) in result.training.items():
            out.append(
                f"  {network}: dense {baseline.final_accuracy:.3f} vs "
                f"pruned {procrustes.final_accuracy:.3f} "
                f"(achieved {procrustes.achieved_sparsity:.2f}x)"
            )
    return "\n".join(out)


@dataclass
class Table3Result:
    model: AreaModel
    area_overhead: float
    power_overhead: float


def run_table3(n_pes: int = 256) -> Table3Result:
    """Table III: component areas/powers and the derived overheads."""
    model = AreaModel(n_pes=n_pes)
    return Table3Result(
        model=model,
        area_overhead=model.area_overhead(),
        power_overhead=model.power_overhead(),
    )


def format_table3(result: Table3Result) -> str:
    rows = [
        [
            r["component"],
            r["power_mw"],
            r["area_um2"],
            r["scope"],
            "yes" if r["procrustes_overhead"] else "",
        ]
        for r in result.model.rows()
    ]
    table = render_table(
        ["component", "power mW", "area um^2", "scope", "Procrustes-only"],
        rows,
    )
    return (
        f"Table III — silicon costs ({result.model.n_pes} PEs)\n{table}\n"
        f"area overhead {result.area_overhead:.1%} (paper: 14%), "
        f"power overhead {result.power_overhead:.1%} (paper: 11%)"
    )
