"""Shared helpers for the experiment harness.

Every experiment driver in :mod:`repro.harness` builds on the same
canonical inputs: a :class:`~repro.workloads.density.DensitySource`
per registry network — analytic by default (the calibrated profile
matching Table II's weight sparsity *and* MAC reduction), measured
when a campaign trajectory is supplied — and a plain-text table
renderer for printing paper-style rows.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.models.zoo import ModelEntry, PAPER_MODELS
from repro.workloads.density import (
    AnalyticDensitySource,
    DenseDensitySource,
    DensitySource,
)
from repro.workloads.sparsity import NetworkSparsity

__all__ = [
    "model_entry",
    "analytic_source_for",
    "density_source_for",
    "sparse_profile_for",
    "dense_profile_for",
    "render_table",
    "histogram_fractions",
    "PAPER_BINS",
]

#: Bin centers of the paper's imbalance histograms (Figures 5 and 13).
PAPER_BINS = (0.0, 0.3125, 0.625, 0.9375, 1.25)


def model_entry(name: str) -> ModelEntry:
    try:
        return PAPER_MODELS[name]
    except KeyError:
        raise KeyError(
            f"unknown model {name!r}; choose from {sorted(PAPER_MODELS)}"
        ) from None


def analytic_source_for(
    name: str, seed: int = 1, sparsity_factor: float | None = None
) -> AnalyticDensitySource:
    """The calibrated analytic density source for a registry network.

    Matches both published Table II numbers: the weight sparsity factor
    and the MAC reduction (via the fitted allocation exponent).  An
    explicit ``sparsity_factor`` overrides the table for sweeps
    (Figure 16's 2.9x/5.8x/11.7x ResNet18 points).
    """
    entry = model_entry(name)
    t2 = entry.table2
    factor = sparsity_factor or t2.sparsity_factor
    target_mac_ratio = t2.dense_macs / t2.sparse_macs
    if sparsity_factor is not None:
        # Keep the same allocation shape, scaled to the new factor.
        target_mac_ratio *= factor / t2.sparsity_factor
        target_mac_ratio = max(target_mac_ratio, 1.05)
    return AnalyticDensitySource(
        name,
        entry.specs(),
        factor,
        seed=seed,
        target_mac_ratio=target_mac_ratio,
        act_density_range=entry.act_density_range,
    )


def density_source_for(
    name: str,
    source: str = "analytic",
    seed: int = 1,
    sparsity_factor: float | None = None,
    campaign_spec=None,
    config=None,
) -> DensitySource:
    """One density source per experiment condition, measured or not.

    ``source`` selects the fidelity: ``"analytic"`` (the calibrated
    fallback every pre-campaign experiment used), ``"dense"`` (the
    unpruned baseline), or ``"trajectory"`` — a measured campaign
    trajectory, trained (or loaded from the store the active or given
    :class:`repro.api.config.RuntimeConfig` names) for
    ``campaign_spec`` (default: the ``name`` mini model under the
    standard recipe).  All three satisfy the same
    :class:`~repro.workloads.density.DensitySource` protocol.
    """
    if source == "analytic":
        return analytic_source_for(
            name, seed=seed, sparsity_factor=sparsity_factor
        )
    if source == "dense":
        entry = model_entry(name)
        return DenseDensitySource(name, entry.specs())
    if source == "trajectory":
        from repro.campaign import CampaignSpec, trajectory_source_for

        spec = campaign_spec or CampaignSpec(model=name, seed=seed)
        if sparsity_factor is not None:
            spec = spec.with_(sparsity_factor=sparsity_factor)
        return trajectory_source_for(spec, config=config)
    raise KeyError(
        f"unknown density source {source!r}; "
        "choose from ['analytic', 'dense', 'trajectory']"
    )


def sparse_profile_for(
    name: str, seed: int = 1, sparsity_factor: float | None = None
) -> NetworkSparsity:
    """The canonical calibrated sparse profile (analytic source)."""
    return analytic_source_for(
        name, seed=seed, sparsity_factor=sparsity_factor
    ).profile()


def dense_profile_for(name: str) -> NetworkSparsity:
    return density_source_for(name, source="dense").profile()


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Fixed-width plain-text table (what the benches print)."""
    def fmt(value: object) -> str:
        if isinstance(value, float):
            if value == 0:
                return "0"
            if abs(value) >= 1e5 or abs(value) < 1e-3:
                return f"{value:.3e}"
            return f"{value:,.3f}".rstrip("0").rstrip(".")
        return str(value)

    table = [[fmt(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in table)) if table else len(h)
        for i, h in enumerate(headers)
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    lines.extend(
        "  ".join(cell.ljust(w) for cell, w in zip(row, widths))
        for row in table
    )
    return "\n".join(lines)


def histogram_fractions(
    overheads: np.ndarray, bins: Sequence[float] = PAPER_BINS
) -> dict[float, float]:
    """Fraction of working sets per paper-style overhead bin.

    Bin centers follow Figures 5/13; values beyond the last center
    accumulate into it, mirroring the figures' final bar.
    """
    centers = np.asarray(bins)
    edges = np.concatenate(
        [
            [-np.inf],
            (centers[:-1] + centers[1:]) / 2.0,
            [np.inf],
        ]
    )
    counts, _ = np.histogram(overheads, bins=edges)
    total = max(1, overheads.size)
    return {
        float(center): float(count) / total
        for center, count in zip(centers, counts)
    }
