"""Training-dynamics experiments: Figures 6, 7, 15, 16.

These exercise the actual Procrustes training algorithm end to end on
the mini model zoo and synthetic datasets (the offline substitution for
CIFAR-10/ImageNet; see DESIGN.md).  Each run returns validation
accuracy curves so the benches can print the same series the paper
plots, and the test suite can assert the paper's qualitative claims:
decay costs no accuracy, quantile selection costs no accuracy but
gives up some sparsity, and Procrustes tracks the dense baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.dropback import DropbackConfig, DropbackOptimizer
from repro.harness._deprecation import install_shims as _install_shims
from repro.models.zoo import MINI_MODELS
from repro.nn.data import Dataset, make_blob_images
from repro.nn.optim import SGD
from repro.nn.trainer import Trainer, TrainingHistory
from repro.sweep import ResultCache, SweepSpec, run_sweep

__all__ = [
    "TrainRunResult",
    "train_mini",
    "run_fig06_decay",
    "run_fig07_quantile",
    "run_fig15_cifar_curves",
    "run_fig16_sparsity_sweep",
    "format_curves",
]

#: Default mini-experiment scale: small enough for seconds-long runs,
#: large enough for above-chance learning dynamics.
DEFAULT_DATA = dict(n_classes=6, samples_per_class=60, size=16, seed=7)


@dataclass
class TrainRunResult:
    """One training run's curve and sparsity outcome."""

    label: str
    history: TrainingHistory
    achieved_sparsity: float
    activation_densities: dict[str, float] = field(default_factory=dict)

    @property
    def final_accuracy(self) -> float:
        return self.history.final_val_accuracy


def _dataset(overrides: dict | None = None) -> tuple[Dataset, Dataset]:
    params = dict(DEFAULT_DATA)
    params.update(overrides or {})
    return make_blob_images(**params)


def train_mini(
    model_name: str,
    mode: str,
    epochs: int = 6,
    sparsity_factor: float = 5.0,
    lr: float = 0.08,
    init_decay: float = 0.9,
    decay_zero_after: int = 60,
    batch_size: int = 16,
    seed: int = 0,
    data_overrides: dict | None = None,
    label: str | None = None,
) -> TrainRunResult:
    """Train one mini network.

    ``mode`` selects the optimizer:

    * ``"sgd"`` — dense baseline;
    * ``"dropback"`` — exact sort, no decay (original Algorithm 2);
    * ``"dropback-decay"`` — exact sort + initial-weight decay (Alg 3);
    * ``"procrustes"`` — quantile selection + decay (the full scheme).

    The decay schedule is rescaled to mini-run length: the paper's
    lambda=0.9 with a hard zero at iteration 1,000 completes within the
    first percent of its 234k-iteration training; the defaults here
    (0.75, 25 iterations, i.e. about two mini epochs) preserve that
    "decay completes early, multiplier already ~1e-3 at the flush"
    behaviour at a scale of ~100 total iterations.
    """
    train, val = _dataset(data_overrides)
    builder = MINI_MODELS[model_name]
    model = builder(n_classes=train.n_classes, seed=seed)
    if mode == "sgd":
        # The dense baseline uses momentum, so it wants a much cooler
        # step than the plain-SGD Dropback runs (effective step is
        # ~lr/(1-momentum); 0.02 with momentum 0.9 matches 0.08 plain
        # and trains cleanly where hotter settings oscillate).
        optimizer = SGD(model.parameters(), lr=0.25 * lr, momentum=0.9)
    else:
        # Dropback tracks accumulated *gradients*; momentum velocities
        # keep growing for untracked weights and cause spurious churn,
        # so the sparse runs use plain SGD as in the original algorithm.
        selection = "quantile" if mode == "procrustes" else "sort"
        decay = 1.0 if mode == "dropback" else init_decay
        config = DropbackConfig(
            sparsity_factor=sparsity_factor,
            lr=lr,
            momentum=0.0,
            selection=selection,
            init_decay=decay,
            init_decay_zero_after=(
                None if decay == 1.0 else decay_zero_after
            ),
        )
        optimizer = DropbackOptimizer(model.parameters(), config)
    trainer = Trainer(
        model, optimizer, train, val, batch_size=batch_size, seed=seed
    )
    history = trainer.run(epochs)
    achieved = (
        optimizer.achieved_sparsity_factor()
        if isinstance(optimizer, DropbackOptimizer)
        else 1.0
    )
    return TrainRunResult(
        label=label or f"{model_name}/{mode}",
        history=history,
        achieved_sparsity=float(achieved),
        activation_densities=trainer.mean_activation_densities(),
    )


def run_fig06_decay(
    epochs: int = 6, seed: int = 0
) -> tuple[TrainRunResult, TrainRunResult]:
    """Figure 6: initial-weight decay vs. no decay (VGG-S shape).

    Paper claim: neither accuracy nor convergence time are affected,
    while decay zeroes all pruned weights early in training.
    """
    decayed = train_mini(
        "vgg-s", "dropback-decay", epochs=epochs, seed=seed,
        label="init decay",
    )
    plain = train_mini(
        "vgg-s", "dropback", epochs=epochs, seed=seed, label="no init decay"
    )
    return decayed, plain


def run_fig07_quantile(
    epochs: int = 6, sparsity_factor: float = 7.5, seed: int = 0
) -> tuple[TrainRunResult, TrainRunResult]:
    """Figure 7: quantile estimation vs. exact sorting.

    Paper claim: validation accuracy is unaffected; the estimation
    error only tracks extra weights (7.5x requested -> 5.2x realized).
    """
    quantile = train_mini(
        "vgg-s",
        "procrustes",
        epochs=epochs,
        sparsity_factor=sparsity_factor,
        seed=seed,
        label="quantile estimation",
    )
    exact = train_mini(
        "vgg-s",
        "dropback-decay",
        epochs=epochs,
        sparsity_factor=sparsity_factor,
        seed=seed,
        label="exact sort",
    )
    return quantile, exact


def _run_from_values(label: str, values: dict) -> TrainRunResult:
    """Rebuild a :class:`TrainRunResult` from sweep-point JSON values.

    This is what lets the training figures ride the sweep engine: a
    cached (JSON) training run round-trips into the same result object
    a live run produces.
    """
    history = TrainingHistory(
        epochs=[int(e) for e in values["epochs"]],
        train_loss=[float(v) for v in values["train_loss"]],
        train_accuracy=[float(v) for v in values["train_accuracy"]],
        val_accuracy=[float(v) for v in values["val_accuracy"]],
        sparsity_factor=[float(v) for v in values["sparsity_curve"]],
        iterations=int(values["iterations"]),
    )
    return TrainRunResult(
        label=label,
        history=history,
        achieved_sparsity=float(values["achieved_sparsity"]),
        activation_densities=dict(values["activation_densities"]),
    )


def run_fig15_cifar_curves(
    networks: tuple[str, ...] = ("vgg-s", "densenet", "wrn-28-10"),
    epochs: int = 6,
    seed: int = 0,
    cache: ResultCache | None = None,
    executor: str = "serial",
    workers: int | None = None,
    config=None,
) -> dict[str, tuple[TrainRunResult, TrainRunResult]]:
    """Figure 15: Procrustes vs. dense SGD on the CIFAR-10 stand-ins."""
    spec = SweepSpec.grid(
        "fig15-cifar-curves",
        "train-mini",
        {"model": list(networks), "mode": ["procrustes", "sgd"]},
        fixed={"epochs": epochs},
        base_seed=seed,
    )
    sweep = run_sweep(
        spec, cache=cache, executor=executor, workers=workers, config=config
    )
    out: dict[str, tuple[TrainRunResult, TrainRunResult]] = {}
    for network in networks:
        (proc_point,) = sweep.select(model=network, mode="procrustes")
        (sgd_point,) = sweep.select(model=network, mode="sgd")
        out[network] = (
            _run_from_values(f"{network} Procrustes", proc_point.values),
            _run_from_values(f"{network} baseline (SGD)", sgd_point.values),
        )
    return out


def run_fig16_sparsity_sweep(
    network: str = "resnet18",
    factors: tuple[float, ...] = (2.9, 5.8, 11.7),
    epochs: int = 6,
    seed: int = 0,
    cache: ResultCache | None = None,
    executor: str = "serial",
    workers: int | None = None,
    config=None,
) -> dict[str, TrainRunResult]:
    """Figure 16: accuracy at several pruning ratios vs. SGD baseline."""
    baseline = run_sweep(
        SweepSpec.grid(
            "fig16-baseline",
            "train-mini",
            {"mode": ["sgd"]},
            fixed={"model": network, "epochs": epochs},
            base_seed=seed,
        ),
        cache=cache,
        config=config,
    )
    sweep = run_sweep(
        SweepSpec.grid(
            "fig16-sparsity-sweep",
            "train-mini",
            {"sparsity_factor": list(factors)},
            fixed={"model": network, "mode": "procrustes", "epochs": epochs},
            base_seed=seed,
        ),
        cache=cache,
        executor=executor,
        workers=workers,
        config=config,
    )
    out = {
        "baseline (SGD)": _run_from_values(
            "baseline (SGD)", baseline.points[0].values
        )
    }
    for point in sweep.points:
        factor = point.params["sparsity_factor"]
        label = f"Procrustes {factor}x"
        out[label] = _run_from_values(label, point.values)
    return out


def format_curves(results: list[TrainRunResult], title: str) -> str:
    """Render validation-accuracy-per-epoch series side by side."""
    lines = [title]
    epochs = results[0].history.epochs
    header = ["epoch"] + [r.label for r in results]
    rows = []
    for i, epoch in enumerate(epochs):
        rows.append(
            [epoch] + [f"{r.history.val_accuracy[i]:.3f}" for r in results]
        )
    from repro.harness.common import render_table
    from repro.report.ascii_plot import line_plot

    lines.append(render_table(header, rows))
    if len(epochs) >= 3:
        lines.append(
            line_plot(
                {r.label: list(r.history.val_accuracy) for r in results},
                title="validation accuracy over epochs",
            )
        )
    for r in results:
        lines.append(
            f"{r.label}: final acc {r.final_accuracy:.3f}, "
            f"achieved sparsity {r.achieved_sparsity:.2f}x"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# legacy surface: registry-era deprecation shims (``train_mini`` and
# ``TrainRunResult`` stay plain attributes — they are building blocks,
# not registry entry points).
# ----------------------------------------------------------------------
_ENTRY_POINTS = (
    "run_fig06_decay",
    "run_fig07_quantile",
    "run_fig15_cifar_curves",
    "run_fig16_sparsity_sweep",
    "format_curves",
)
_DEPRECATED, entry_point, __getattr__, __dir__ = _install_shims(
    globals(), _ENTRY_POINTS
)
