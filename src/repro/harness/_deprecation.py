"""Deprecation shims for the legacy entry-function import surface.

The registry (:mod:`repro.api.registry`) is the supported way to run
experiments; the historical ``from repro.harness.arch_experiments
import run_fig01_potential`` style still works, but through a PEP 562
module ``__getattr__`` that emits a :class:`DeprecationWarning`.
Library code (the registry loaders, ``export_all``) goes through each
module's warning-free ``entry_point(name)`` accessor instead — a grep
test pins that no library module imports the legacy names directly.
"""

from __future__ import annotations

import warnings
from typing import Any, Callable, Iterable

__all__ = ["install_shims"]


def install_shims(
    module_globals: dict[str, Any], entry_points: Iterable[str]
) -> tuple[dict[str, Any], Callable, Callable, Callable]:
    """Move ``entry_points`` behind a deprecating module ``__getattr__``.

    Pops each named function out of the module's namespace and returns
    ``(deprecated_map, entry_point, __getattr__, __dir__)`` for the
    module to bind::

        _DEPRECATED, entry_point, __getattr__, __dir__ = install_shims(
            globals(), _ENTRY_POINTS
        )

    ``entry_point(name)`` hands back the function without a warning
    (the registry's path); any direct attribute access — including
    ``from module import name`` — warns and forwards.
    """
    module = module_globals["__name__"]
    deprecated = {name: module_globals.pop(name) for name in entry_points}

    def entry_point(name: str):
        """The named entry function, without a deprecation warning."""
        try:
            return deprecated[name]
        except KeyError:
            raise KeyError(
                f"{module} has no entry point {name!r}; known entry "
                f"points: {sorted(deprecated)}"
            ) from None

    def module_getattr(name: str):
        fn = deprecated.get(name)
        if fn is None:
            raise AttributeError(
                f"module {module!r} has no attribute {name!r}"
            )
        warnings.warn(
            f"importing {name} from {module} is deprecated; run it "
            f"through the experiment registry instead "
            f"(repro.api.get_experiment / repro.api.evaluate)",
            DeprecationWarning,
            stacklevel=2,
        )
        return fn

    def module_dir():
        return sorted(set(module_globals) | set(deprecated))

    return deprecated, entry_point, module_getattr, module_dir
