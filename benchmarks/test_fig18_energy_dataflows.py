"""Figure 18: energy across the four spatial mappings.

Paper: because MAC count and the memory hierarchy are fixed, the
dataflow choice has negligible impact on energy — which frees the
design to pick the mapping by performance alone.
"""

import pytest

from benchmarks.conftest import run_once
from repro.harness import arch_experiments as _arch

format_fig18 = _arch.entry_point("format_fig18")
run_fig18_fig19_dataflows = _arch.entry_point("run_fig18_fig19_dataflows")


pytestmark = pytest.mark.slow  # trains networks / heavy sweep

NETWORKS = ("wrn-28-10", "densenet", "vgg-s", "resnet18", "mobilenet-v2")


def test_fig18_energy_across_dataflows(benchmark):
    result = run_once(benchmark, run_fig18_fig19_dataflows, NETWORKS)
    print()
    print(format_fig18(result))
    for network in NETWORKS:
        assert result.energy_spread(network, sparse=True) < 1.3, network
        assert result.energy_spread(network, sparse=False) < 1.3, network
