"""Figure 13: load-imbalance histogram after half-tile balancing.

Paper: with the K,N dataflow and half-tile load balancing, most
working sets show <10% overhead with the worst near 30% — versus the
40-100%+ overheads of Figure 5.
"""

from benchmarks.conftest import run_once
from repro.harness import arch_experiments as _arch

format_histogram = _arch.entry_point("format_histogram")
run_imbalance_histogram = _arch.entry_point("run_imbalance_histogram")


def test_fig13_balanced_kn_histogram(benchmark):
    result = run_once(
        benchmark, run_imbalance_histogram, "vgg-s", "KN", True
    )
    print()
    print(format_histogram(result, "Figure 13"))
    assert result.mean_overhead < 0.2
    assert result.fractions[0.0] > 0.5


def test_fig13_vs_fig05_improvement(benchmark):
    def both():
        raw = run_imbalance_histogram("vgg-s", "CK", balanced=False)
        balanced = run_imbalance_histogram("vgg-s", "KN", balanced=True)
        return raw, balanced

    raw, balanced = run_once(benchmark, both)
    improvement = raw.mean_overhead / max(balanced.mean_overhead, 1e-9)
    print(f"\nbalancing reduces mean overhead {improvement:.1f}x "
          f"({raw.mean_overhead:.1%} -> {balanced.mean_overhead:.1%})")
    assert improvement > 2.0
