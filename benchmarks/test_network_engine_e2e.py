"""End-to-end behavioural check: compressed weights + activations.

Section IV of the paper claims one storage design serves all of
training: CSB weights readable in every phase, and activations stored
"uncompressed for immediate reuse and in a compressed format for
long-term reuse".  This bench runs whole training iterations of a conv
stack on the multi-layer behavioural engine and verifies the claims
*executable*: the sparse stack trains with fewer cycles than its dense
twin, the fw→wu activation buffer compresses, QE filtering thins the
gradient write-back, and pruned weights stay exactly zero.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.hw.config import PROCRUSTES_16x16
from repro.hw.network_engine import NetworkTrainingEngine
from repro.hw.qe_unit import QuantileEngine


def _stack(rng, density):
    def w(shape):
        weight = rng.normal(size=shape) * 0.2
        return weight * (rng.uniform(size=shape) < density)

    return [
        ("c0", w((32, 16, 3, 3)), 1),
        ("c1", w((32, 32, 3, 3)), 1),
        ("c2", w((16, 32, 3, 3)), 1),
    ]


def _run(seed=3, iterations=4):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(8, 16, 12, 12))

    results = {}
    for label, density in (("dense", 1.0), ("sparse@5x", 0.2)):
        qe = QuantileEngine(sparsity_factor=5.0, rho=0.02)
        engine = NetworkTrainingEngine(
            PROCRUSTES_16x16, _stack(rng, density), qe=qe, lr=1e-3
        )
        zeros_before = {
            name: w == 0.0 for name, w in engine.dense_weights().items()
        }
        last = None
        for _ in range(iterations):
            y, _ = engine.forward(x)
            last = engine.train_step(x, (y - 1.0) / y.size)
        after = engine.dense_weights()
        pruned_stay_zero = all(
            (after[name][mask] == 0.0).all()
            for name, mask in zeros_before.items()
        )
        results[label] = {
            "cycles": last.total_cycles,
            "macs": last.total_macs,
            "act_compression": last.activation_compression,
            "kept_fraction": last.gradients_kept / last.gradients_seen,
            "pruned_stay_zero": pruned_stay_zero,
        }
    return results


def test_network_engine_end_to_end(benchmark):
    rows = run_once(benchmark, _run)
    print()
    print("Multi-layer behavioural engine, 3-conv stack, iteration 4")
    print(
        f"{'config':12} {'cycles':>10} {'MACs':>12} {'acts comp':>10} "
        f"{'grads kept':>11}"
    )
    for label, row in rows.items():
        print(
            f"{label:12} {row['cycles']:>10,} {row['macs']:>12,} "
            f"{row['act_compression']:>9.2f}x {row['kept_fraction']:>11.1%}"
        )
    dense, sparse = rows["dense"], rows["sparse@5x"]
    # Weight sparsity converts to fewer cycles and MACs.  5x weight
    # sparsity lands at ~2.4x fewer cycles, not 5x: the wu phase is
    # activation-bound (identical in both configs) and per-set maxima
    # track the densest channel — the same dilution the paper's
    # Figure 17 shows between MAC reduction and realized savings.
    assert sparse["cycles"] < 0.45 * dense["cycles"]
    assert sparse["macs"] < 0.4 * dense["macs"]
    # The fw->wu activation buffer compresses (relu zeros).
    assert sparse["act_compression"] > 1.2
    # Pruned positions never resurrect.
    assert sparse["pruned_stay_zero"]
