"""Section III-B ablation: DUMIQUE vs. set-point feedback vs. P-squared.

The paper chooses DUMIQUE for the QE unit and reports its constants
(rho=1e-3, initial=1e-6) need no tuning.  The obvious alternatives are
the DSR set-point controller (whose *initial threshold* is a
hyperparameter) and the classic P-squared estimator (more accurate,
much more hardware).  This bench measures all three on the same
accumulated-gradient-magnitude stream:

* relative threshold error after a fixed stream;
* sensitivity to the initial estimate, swept over six decades;
* hardware inventory per update.

Expected shape: DUMIQUE lands within a few percent of the true
quantile from *any* initialization; the set-point controller's error
depends strongly on its initial value; P2 is the most accurate but
needs ~15 registers and divides.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.core.quantile import DumiqueEstimator
from repro.core.quantile_variants import (
    P2Estimator,
    SetPointThreshold,
    estimator_hardware_cost,
)

Q = 0.9  # 10x sparsity target
STREAM = 60_000
INITIALS = (1e-6, 1e-3, 1.0)


def _gradient_stream(rng, n=STREAM):
    # Heavy-tailed magnitudes, like accumulated gradients mid-training.
    return np.abs(rng.normal(size=n)) ** 1.5


def _relative_error(estimate, truth):
    return abs(np.log(max(estimate, 1e-300) / truth))


def _run(seed=3):
    rng = np.random.default_rng(seed)
    values = _gradient_stream(rng)
    truth = float(np.quantile(values, Q))
    rows = {}
    for initial in INITIALS:
        dumique = DumiqueEstimator(Q, initial=initial)
        # DSR adjusts its threshold only every 1,000-8,000 iterations
        # (Section II-E); at that cadence the initial value matters.
        setpoint = SetPointThreshold(
            Q, initial=initial, adjust_every=5000, gain=0.2
        )
        dumique.update_many(values)
        setpoint.update_many(values)
        rows[initial] = {
            "dumique": _relative_error(dumique.estimate, truth),
            "set-point": _relative_error(setpoint.estimate, truth),
        }
    p2 = P2Estimator(Q)
    p2.update_many(values)
    return rows, _relative_error(p2.estimate, truth)


def test_estimator_shootout(benchmark):
    rows, p2_err = run_once(benchmark, _run)
    print()
    print(f"Threshold estimators at q={Q} (|log estimate/truth|)")
    print(f"{'initial':>10} {'DUMIQUE':>10} {'set-point':>10}")
    for initial, row in rows.items():
        print(
            f"{initial:>10.0e} {row['dumique']:>10.3f} "
            f"{row['set-point']:>10.3f}"
        )
    print(f"P2 (init-free): {p2_err:.3f}")
    print()
    print("Hardware inventory per update:")
    for kind in ("dumique", "set-point", "p2"):
        print(f"  {kind:10} {estimator_hardware_cost(kind)}")

    # DUMIQUE: insensitive to initialization (the paper's claim).
    dumique_errors = [row["dumique"] for row in rows.values()]
    assert max(dumique_errors) < 0.25
    assert max(dumique_errors) - min(dumique_errors) < 0.2
    # Set-point: at least one initialization lands far off.
    assert max(row["set-point"] for row in rows.values()) > 0.5
    # P2: the accuracy reference.
    assert p2_err < 0.05
    # And the hardware ordering that justifies DUMIQUE.
    assert (
        estimator_hardware_cost("dumique")["registers"]
        < estimator_hardware_cost("p2")["registers"]
    )
