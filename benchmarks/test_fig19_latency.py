"""Figure 19: training latency across the four spatial mappings.

Paper: the minibatch-spatial mappings (C,N and K,N) are fastest, with
K,N slightly ahead (better first-layer utilization); C,K lags even
with its complex interconnect (few-channel layers); activation-
stationary P,Q is slowest overall.
"""

import pytest

from benchmarks.conftest import run_once
from repro.harness import arch_experiments as _arch

format_fig19 = _arch.entry_point("format_fig19")
run_fig18_fig19_dataflows = _arch.entry_point("run_fig18_fig19_dataflows")


pytestmark = pytest.mark.slow  # trains networks / heavy sweep

NETWORKS = ("wrn-28-10", "densenet", "vgg-s", "resnet18", "mobilenet-v2")


def test_fig19_latency_across_dataflows(benchmark):
    result = run_once(benchmark, run_fig18_fig19_dataflows, NETWORKS)
    print()
    print(format_fig19(result))
    for network in NETWORKS:
        cycles = {
            str(r["mapping"]): float(r["total_cycles"])
            for r in result.rows
            if r["network"] == network and r["sparse"]
        }
        # Minibatch mappings beat PQ everywhere.
        assert cycles["KN"] < cycles["PQ"], network
        assert cycles["CN"] < cycles["PQ"], network
        # The overall fastest mapping is a minibatch mapping.
        assert result.fastest_mapping(network) in ("KN", "CN"), network


def test_fig19_speedup_band(benchmark):
    """Paper headline: 2.28x-4x speedup, WRN best."""
    result = run_once(benchmark, run_fig18_fig19_dataflows, NETWORKS, ("KN",))
    speedups = {}
    for network in NETWORKS:
        cycles = {
            bool(r["sparse"]): float(r["total_cycles"])
            for r in result.rows
            if r["network"] == network and r["mapping"] == "KN"
        }
        speedups[network] = cycles[False] / cycles[True]
    print()
    print("KN speedups:", {k: round(v, 2) for k, v in speedups.items()})
    for network, speedup in speedups.items():
        assert 1.8 < speedup < 4.3, (network, speedup)
    best = max(speedups, key=speedups.get)
    assert best in ("wrn-28-10", "resnet18")
