"""Figure 17: energy breakdown with the K,N dataflow, all five CNNs.

Paper: Procrustes saves 2.27x-3.26x energy; most savings come from
skipped FP32 MACs; MobileNet v2 benefits least because depthwise
convolutions limit reuse and DRAM looms larger.
"""

from benchmarks.conftest import run_once
from repro.harness import arch_experiments as _arch

format_fig17 = _arch.entry_point("format_fig17")
run_fig17_energy_breakdown = _arch.entry_point("run_fig17_energy_breakdown")


def test_fig17_energy_breakdown(benchmark):
    result = run_once(benchmark, run_fig17_energy_breakdown)
    print()
    print(format_fig17(result))
    savings = result.savings()
    # Band check (paper: 2.27-3.26) with modelling slack.
    for network, ratio in savings.items():
        assert 1.7 < ratio < 4.2, (network, ratio)
    # MobileNet v2 benefits least (DRAM-bound depthwise convolutions).
    assert savings["mobilenet-v2"] == min(savings.values())
    # The high-sparsity ImageNet models save the most.
    best = max(savings, key=savings.get)
    assert best in ("resnet18", "wrn-28-10")
