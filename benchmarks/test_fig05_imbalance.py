"""Figure 5: load-imbalance histogram without balancing.

Paper: weight-stationary C,K work tiles on Dropback-sparse VGG-S
frequently exceed 50% execution overhead, sometimes 100%+.
"""

from benchmarks.conftest import run_once
from repro.harness import arch_experiments as _arch

format_histogram = _arch.entry_point("format_histogram")
run_imbalance_histogram = _arch.entry_point("run_imbalance_histogram")


def test_fig05_unbalanced_ck_histogram(benchmark):
    result = run_once(
        benchmark, run_imbalance_histogram, "vgg-s", "CK", False
    )
    print()
    print(format_histogram(result, "Figure 5"))
    above_50 = sum(
        frac for center, frac in result.fractions.items() if center >= 0.625
    )
    assert result.mean_overhead > 0.3
    assert above_50 > 0.2
