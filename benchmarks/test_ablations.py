"""Ablation benchmarks for the design choices DESIGN.md calls out.

Not figures from the paper — these quantify the contribution of each
Procrustes mechanism by switching it off or sweeping its knob:

* load balancing (none / half-tile / chip-wide-complex),
* the register-file size that sets work-tile granularity,
* the QE unit's parallel width,
* the tracked-set hysteresis band,
* minibatch size (the dimension the K,N dataflow leans on).
"""

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro.core.tracking import ThresholdTracker
from repro.dataflow.latency import network_latency
from repro.harness.common import render_table, sparse_profile_for
from repro.hw.config import ArchConfig, PROCRUSTES_16x16
from repro.hw.qe_unit import QuantileEngine


def test_ablation_load_balancing(benchmark):
    """Half-tile balancing is the speedup's load-bearing piece."""
    profile = sparse_profile_for("vgg-s")

    def sweep():
        results = {}
        for label, mapping, balance in (
            ("KN unbalanced", "KN", False),
            ("KN half-tile", "KN", True),
            ("CK complex-net", "CK", True),
        ):
            lat = network_latency(
                profile, mapping, PROCRUSTES_16x16, 64,
                sparse=True, balance=balance,
            )
            results[label] = lat.total_cycles
        return results

    results = run_once(benchmark, sweep)
    print()
    print(render_table(
        ["configuration", "cycles"],
        [[k, f"{v:.3e}"] for k, v in results.items()],
    ))
    assert results["KN half-tile"] < results["KN unbalanced"]
    assert results["KN half-tile"] < results["CK complex-net"]


def test_ablation_rf_size(benchmark):
    """Bigger register files mean bigger work tiles, less relative
    sparsity variance, and less imbalance — at area cost (Table III's
    RF dominates PE area)."""
    profile = sparse_profile_for("vgg-s")

    def sweep():
        cycles = {}
        for rf_bytes in (512, 1024, 2048):
            arch = ArchConfig(
                name=f"rf{rf_bytes}",
                rf_bytes_per_pe=rf_bytes,
                sparse_training_support=True,
            )
            lat = network_latency(
                profile, "KN", arch, 64, sparse=True, balance=False,
                phases=("fw",),
            )
            cycles[rf_bytes] = lat.total_cycles
        return cycles

    cycles = run_once(benchmark, sweep)
    print()
    print(render_table(
        ["RF bytes/PE", "fw cycles (unbalanced)"],
        [[k, f"{v:.3e}"] for k, v in cycles.items()],
    ))
    assert cycles[2048] <= cycles[512] * 1.02


def test_ablation_qe_width(benchmark):
    """The 4-wide QE keeps pace with the datapath at nearly the scalar
    unit's filtering quality."""
    rng = np.random.default_rng(0)
    stream = rng.lognormal(-4, 1.2, size=(40, 20_000))

    def sweep():
        rows = []
        for width in (1, 2, 4, 8):
            qe = QuantileEngine(sparsity_factor=7.5, updates_per_cycle=width)
            for burst in stream:
                qe.filter(burst)
            rows.append(
                (width, qe.stats.retain_fraction, qe.stats.cycles)
            )
        return rows

    rows = run_once(benchmark, sweep)
    print()
    print(render_table(
        ["width", "retained fraction", "cycles"],
        [[w, f"{f:.3f}", c] for w, f, c in rows],
    ))
    by_width = {w: (f, c) for w, f, c in rows}
    # Wider units consume proportionally fewer cycles...
    assert by_width[4][1] == pytest.approx(by_width[1][1] / 4, rel=0.01)
    # ...while retaining a similar fraction (target 1/7.5 = 0.133).
    assert by_width[4][0] == pytest.approx(by_width[1][0], abs=0.1)


def test_ablation_hysteresis(benchmark):
    """The keep-until-evicted band controls the sparsity giveaway
    (requested vs realized factor)."""
    rng = np.random.default_rng(1)

    def sweep():
        realized = {}
        for hysteresis in (0.0, 0.3, 0.6, 0.9):
            tracker = ThresholdTracker(7.5, hysteresis=hysteresis)
            tracked = np.zeros(20_000, dtype=bool)
            for _ in range(40):
                mags = np.abs(
                    rng.normal(size=20_000) * (0.5 + tracked)
                )
                tracked = tracker.select(mags, tracked)
            realized[hysteresis] = 20_000 / max(1, tracked.sum())
        return realized

    realized = run_once(benchmark, sweep)
    print()
    print(render_table(
        ["hysteresis", "realized factor (requested 7.5x)"],
        [[h, f"{f:.2f}x"] for h, f in realized.items()],
    ))
    # Wider bands (smaller hysteresis value) track more extra weights.
    assert realized[0.0] <= realized[0.9] + 1e-9


def test_ablation_minibatch(benchmark):
    """K,N needs a minibatch to fill its second dimension: tiny N
    starves columns, large N just adds tiles."""
    profile = sparse_profile_for("resnet18")

    def sweep():
        per_sample = {}
        for n in (4, 16, 64):
            lat = network_latency(
                profile, "KN", PROCRUSTES_16x16, n, sparse=True,
                phases=("fw",),
            )
            per_sample[n] = lat.total_cycles / n
        return per_sample

    per_sample = run_once(benchmark, sweep)
    print()
    print(render_table(
        ["minibatch", "fw cycles per sample"],
        [[n, f"{v:.3e}"] for n, v in per_sample.items()],
    ))
    assert per_sample[64] < per_sample[4]
