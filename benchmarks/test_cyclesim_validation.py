"""Cycle-level validation of the analytical latency model.

The paper's evaluation (Figs 17-20) uses Timeloop-style analytical
accounting that assumes the simple three-interconnect fabric never
starves the PEs.  This bench runs the cycle-level simulator on a
VGG-S-shaped conv layer and checks the assumption:

* with an ideal fabric, simulated cycles equal the analytical
  max-over-PEs accounting (model validation);
* with single-word buses, the KN dataflow's fills stay largely hidden
  behind compute, balanced KN improves latency at identical bus
  traffic (Figure 12), and chip-balancing CK backfires because its
  duplicated activation traffic stalls the fabric (Figure 10).
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.hw.config import PROCRUSTES_16x16
from repro.hw.cyclesim import (
    CycleLevelSimulator,
    IDEAL_FABRIC,
    SINGLE_WORD_FABRIC,
)
from repro.hw.pe import PEArraySimulator


def _vgg_like_layer(seed=11, density=0.19):
    rng = np.random.default_rng(seed)
    mask = rng.uniform(size=(64, 64, 3, 3)) < density
    return mask


def _run_validation():
    mask = _vgg_like_layer()
    p = q = 8
    n = 16
    # The analytical model holds a whole k-tile's weights resident; a
    # big-RF configuration isolates that assumption for the equality
    # check, while the paper's 1 KB RF quantifies chunking overhead.
    from dataclasses import replace

    big_rf = replace(PROCRUSTES_16x16, name="big-rf", rf_bytes_per_pe=1 << 20)
    sim_exact = CycleLevelSimulator(big_rf, IDEAL_FABRIC)
    sim_ideal = CycleLevelSimulator(PROCRUSTES_16x16, IDEAL_FABRIC)
    sim_real = CycleLevelSimulator(PROCRUSTES_16x16, SINGLE_WORD_FABRIC)

    rng = np.random.default_rng(0)
    weight = np.where(mask, rng.normal(size=mask.shape), 0.0)
    x = rng.normal(size=(n, mask.shape[1], p + 2, q + 2))
    _, analytical = PEArraySimulator(PROCRUSTES_16x16).run_conv_kn(x, weight)

    rows = {}
    rows["analytical KN"] = {
        "cycles": float(analytical.cycles),
        "stall%": 0.0,
        "util%": 100.0 * analytical.utilization,
    }
    for label, sim, mapping, balance in [
        ("cyclesim KN bigRF", sim_exact, "KN", False),
        ("cyclesim KN 1KB-RF", sim_ideal, "KN", False),
        ("cyclesim KN", sim_real, "KN", False),
        ("cyclesim KN bal", sim_real, "KN", True),
        ("cyclesim CK", sim_real, "CK", False),
        ("cyclesim CK bal", sim_real, "CK", True),
    ]:
        r = sim.run_conv(mask, p=p, q=q, n=n, mapping=mapping, balance=balance)
        rows[label] = {
            "cycles": r.cycles,
            "stall%": 100.0 * r.stall_fraction,
            "util%": 100.0 * r.utilization,
        }
    return rows


def test_cyclesim_validates_analytical_model(benchmark):
    rows = run_once(benchmark, _run_validation)
    print()
    print("Cycle-level validation (VGG-S-shaped conv, 16x16 PEs)")
    print(f"{'configuration':22} {'cycles':>12} {'stall%':>8} {'util%':>8}")
    for label, row in rows.items():
        print(
            f"{label:22} {row['cycles']:>12.0f} "
            f"{row['stall%']:>8.1f} {row['util%']:>8.1f}"
        )
    # Model validation: with resident weights and an ideal fabric the
    # cycle simulation reproduces the analytical accounting exactly.
    np.testing.assert_allclose(
        rows["cyclesim KN bigRF"]["cycles"],
        rows["analytical KN"]["cycles"],
        rtol=5e-3,
    )
    # The paper's 1 KB RF forces input-channel chunking the analytical
    # model does not see; the overhead is real but bounded (<25%).
    chunking = (
        rows["cyclesim KN 1KB-RF"]["cycles"] / rows["analytical KN"]["cycles"]
    )
    assert 1.0 <= chunking < 1.25
    # Realistic fabric: KN stalls stay modest; balancing helps.
    assert rows["cyclesim KN"]["stall%"] < 35.0
    assert rows["cyclesim KN bal"]["cycles"] < rows["cyclesim KN"]["cycles"]
    # Figure 10: balanced CK is still worse than balanced KN.
    assert rows["cyclesim KN bal"]["cycles"] < rows["cyclesim CK bal"]["cycles"]
