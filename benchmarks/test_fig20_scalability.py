"""Figure 20: scaling from 256 PEs (16x16) to 1024 PEs (32x32).

Paper: latency scales near-ideally (~3.9x on 4x cores) for the K,N
mapping; other mappings trade utilization for reuse and scale worse;
energy barely moves because the MAC count is unchanged.
"""

import pytest

from benchmarks.conftest import run_once
from repro.harness import arch_experiments as _arch

format_fig20 = _arch.entry_point("format_fig20")
run_fig20_scalability = _arch.entry_point("run_fig20_scalability")


pytestmark = pytest.mark.slow  # trains networks / heavy sweep


def test_fig20_scalability(benchmark):
    result = run_once(benchmark, run_fig20_scalability)
    print()
    print(format_fig20(result))
    for network in ("resnet18", "mobilenet-v2"):
        kn = result.latency_scaling(network, "KN")
        pq = result.latency_scaling(network, "PQ")
        assert 3.0 < kn <= 4.05, (network, kn)
        assert kn > pq, network
        assert abs(result.energy_scaling(network, "KN") - 1.0) < 0.3
