"""Table II: model sizes, MAC counts, sparsity, and accuracy parity.

Paper: 3.9x-11.7x weight sparsity at unpruned accuracy across the five
CNNs; surviving MACs shrink 2.4x-5x.
"""

import pytest

from benchmarks.conftest import run_once
from repro.harness.tables import format_table2, run_table2


def test_table2_model_statistics(benchmark):
    result = run_once(benchmark, run_table2, None, False)
    print()
    print(format_table2(result))
    for row in result.rows:
        assert float(row["dense_size"]) == pytest.approx(
            float(row["paper_dense_size"]), rel=0.03
        )
        assert float(row["sparsity"]) == pytest.approx(
            float(row["paper_sparsity"]), rel=0.1
        )


@pytest.mark.slow  # trains two networks end to end
def test_table2_accuracy_parity(benchmark):
    result = run_once(
        benchmark, run_table2, ("vgg-s", "resnet18"), True, 6
    )
    print()
    print(format_table2(result))
    for network, (procrustes, baseline) in result.training.items():
        assert (
            procrustes.history.best_val_accuracy
            >= baseline.history.best_val_accuracy - 0.2
        ), network
