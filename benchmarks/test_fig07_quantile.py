"""Figure 7: quantile estimation versus exact sorting.

Paper: selecting weights against the DUMIQUE threshold instead of the
global sort leaves validation accuracy unaffected; the estimation
error only tracks extra weights, relaxing 7.5x requested sparsity to
5.2x realized.
"""

import pytest

from benchmarks.conftest import run_once
from repro.harness import training_experiments as _training

format_curves = _training.entry_point("format_curves")
run_fig07_quantile = _training.entry_point("run_fig07_quantile")


pytestmark = pytest.mark.slow  # trains networks / heavy sweep


def test_fig07_quantile_matches_sort(benchmark):
    quantile, exact = run_once(benchmark, run_fig07_quantile, 8)
    print()
    print(format_curves([quantile, exact], "Figure 7 — quantile vs sort"))
    assert (
        quantile.history.best_val_accuracy
        >= exact.history.best_val_accuracy - 0.15
    )
    # The sparsity giveaway: realized factor below the 7.5x request
    # (the paper measures 5.2x), while exact sort hits it exactly.
    assert exact.achieved_sparsity > 7.0
    assert 3.0 < quantile.achieved_sparsity < 7.0
