"""Introduction claims (i)-(iii): why gradual pruning saves less.

The intro argues that gradually-pruning sparse trainers imply "(i) no
peak memory footprint reduction, (ii) mediocre energy savings because
the average sparsity is low during most of the training process, and
(iii) the need to support two weight storage formats ... and switch
formats mid-way during training", while Dropback/Procrustes hold the
target sparsity from iteration zero.

This bench tabulates all three quantities for the published schedules
of every surveyed method, on a ResNet18-scale run (90 epochs x 5,005
iterations at minibatch 256 — the standard ImageNet recipe).
Expected shape: Procrustes/Dropback/DSR have flat low density and
switch-free storage; lottery/eager peak at dense, average >60 %
density, and must switch formats mid-run.
"""

from benchmarks.conftest import run_once
from repro.core.schedules import PAPER_SCHEDULES
from repro.hw.memory import training_footprint, weight_footprint, weight_traffic
from repro.models.zoo import get_specs

RESNET18_ITERATIONS = 90 * 5_005


def _survey():
    specs = get_specs("resnet18")
    weight_count = sum(s.weight_count for s in specs)
    rows = {}
    for name, schedule in PAPER_SCHEDULES.items():
        wf = weight_footprint(schedule, weight_count, RESNET18_ITERATIONS)
        tf = training_footprint(
            schedule, specs, n=64, total_iterations=RESNET18_ITERATIONS
        )
        traffic = weight_traffic(schedule, weight_count, RESNET18_ITERATIONS)
        rows[name] = {
            "avg_density": schedule.average_density(RESNET18_ITERATIONS),
            "peak_reduction": wf.peak_reduction,
            "switch_at": wf.switch_iteration,
            "weight_MB": (tf.weight_peak_bits + tf.optimizer_state_bits) / 8e6,
            "total_MB": tf.total_bits / 8e6,
            "traffic_MB": traffic.total_bits / 8e6,
        }
    return rows


def test_schedule_claims(benchmark):
    rows = run_once(benchmark, _survey)
    print()
    print("Sparse-training schedules on ResNet18 (450k iterations)")
    print(
        f"{'method':14} {'avg density':>12} {'peak redux':>11} "
        f"{'format switch':>14} {'wgt+state MB':>13} {'total MB':>9} "
        f"{'traffic MB/it':>13}"
    )
    for name, row in rows.items():
        switch = (
            "never" if row["switch_at"] is None
            else f"@{row['switch_at']:,}"
        )
        print(
            f"{name:14} {row['avg_density']:>12.3f} "
            f"{row['peak_reduction']:>10.2f}x {switch:>14} "
            f"{row['weight_MB']:>13.1f} {row['total_MB']:>9.1f} "
            f"{row['traffic_MB']:>13.2f}"
        )
    # Claim (i): gradual pruning has no peak-memory reduction.
    assert rows["lottery"]["peak_reduction"] == 1.0
    assert rows["eager-pruning"]["peak_reduction"] == 1.0
    assert rows["procrustes"]["peak_reduction"] > 3.5
    # Claim (ii): average density stays high for gradual methods.
    assert rows["eager-pruning"]["avg_density"] > 0.6
    assert rows["procrustes"]["avg_density"] < 0.1
    # Claim (iii): gradual methods switch formats mid-training;
    # sparse-from-scratch methods never store dense.
    assert rows["lottery"]["switch_at"] > 100_000
    assert rows["procrustes"]["switch_at"] == 0
    assert rows["dsr"]["switch_at"] == 0
    # Net effect: weights+optimizer state shrink >4x; the total is
    # dominated by activations (held fw-to-wu at ImageNet scale), so
    # it moves less — an honest caveat the intro's framing skips.
    assert rows["procrustes"]["weight_MB"] < 0.25 * rows["lottery"]["weight_MB"]
    assert rows["procrustes"]["total_MB"] < rows["lottery"]["total_MB"]
    # Per-iteration weight DRAM traffic follows average stored size.
    assert rows["procrustes"]["traffic_MB"] < 0.35 * rows["eager-pruning"]["traffic_MB"]
