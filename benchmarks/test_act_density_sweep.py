"""Ablation: weight-update savings track activation density.

Section VI-C singles out VGG-S as "a less common case where the weight
sparsity is concentrated in the layers that perform relatively few
MACs, so the activation sparsity leveraged by the weight-update phase
actually saves more operations".  The wu phase is the only one that
exploits *activation* sparsity (Figure 2 / insight 1), so its cost
should track post-relu density while fw/bw stay put.

This bench sweeps the activation density of the VGG-S profile from
0.2 to 0.8 and verifies exactly that separation.
"""

from benchmarks.conftest import run_once
from repro.dataflow import simulate
from repro.hw import PROCRUSTES_16x16
from repro.models.zoo import PAPER_MODELS
from repro.workloads.sparsity import synthetic_profile

DENSITIES = (0.2, 0.4, 0.6, 0.8)


def _sweep(network="vgg-s", n=64):
    entry = PAPER_MODELS[network]
    t2 = entry.table2
    rows = {}
    for act in DENSITIES:
        profile = synthetic_profile(
            network,
            entry.specs(),
            t2.sparsity_factor,
            seed=1,
            target_mac_ratio=t2.dense_macs / t2.sparse_macs,
            act_density_range=(act, act),
        )
        result = simulate(profile, "KN", arch=PROCRUSTES_16x16, n=n)
        rows[act] = result.cycles_by_phase()
    return rows


def test_wu_tracks_activation_density(benchmark):
    rows = run_once(benchmark, _sweep)
    print()
    print("VGG-S (5.2x weights), K,N: cycles vs activation density")
    print(f"{'act density':>12} {'fw':>12} {'bw':>12} {'wu':>12}")
    for act, row in rows.items():
        print(
            f"{act:>12.1f} {row['fw']:>12.3e} {row['bw']:>12.3e} "
            f"{row['wu']:>12.3e}"
        )
    densities = list(rows)
    wu = [rows[d]["wu"] for d in densities]
    fw = [rows[d]["fw"] for d in densities]
    bw = [rows[d]["bw"] for d in densities]
    # wu cycles rise monotonically with activation density...
    assert wu == sorted(wu)
    assert wu[-1] > 2.0 * wu[0]
    # ...while fw/bw are activation-density-insensitive (weight-sparse
    # phases; tiny jitter from profile regeneration is tolerated).
    assert max(fw) / min(fw) < 1.05
    assert max(bw) / min(bw) < 1.05