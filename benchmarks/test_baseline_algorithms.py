"""Baseline sparse-training algorithms vs. Procrustes (Section II-E).

Runs the three algorithm families on the same mini task:

* Procrustes (Dropback + decay + quantile) — sparse from iteration 0;
* gradual magnitude pruning (lottery-ticket / Eager Pruning style) —
  dense start, slow ramp, so average sparsity during training is low;
* dynamic sparse reparameterization — sparse from scratch with
  prune-and-regrow.

Paper claims exercised: gradual schemes give up peak-memory reduction
and most energy savings (low average sparsity); Procrustes maintains
target sparsity from the start at comparable accuracy.
"""

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro.core.baselines import (
    DynamicSparseReparameterization,
    GradualMagnitudePruning,
    GradualMagnitudePruningConfig,
)
from repro.core.dropback import DropbackConfig, DropbackOptimizer
from repro.harness.common import render_table
from repro.models.vgg import mini_vgg_s
from repro.nn.data import make_blob_images
from repro.nn.trainer import Trainer


pytestmark = pytest.mark.slow  # trains networks / heavy sweep

TARGET = 4.0
EPOCHS = 6


def _task(seed=0):
    train, val = make_blob_images(
        n_classes=6, samples_per_class=60, size=16, seed=7
    )
    model = mini_vgg_s(n_classes=train.n_classes, seed=seed)
    return train, val, model


def _run(optimizer_factory, label):
    train, val, model = _task()
    optimizer = optimizer_factory(model)
    trainer = Trainer(model, optimizer, train, val, batch_size=16, seed=0)
    sparsity_trace = []
    for _ in range(EPOCHS):
        trainer.run(1)
        sparsity_trace.append(optimizer.achieved_sparsity_factor())
    return {
        "label": label,
        "accuracy": trainer.history.best_val_accuracy,
        "final_sparsity": sparsity_trace[-1],
        "mean_sparsity": float(np.mean(sparsity_trace)),
    }


def test_baseline_comparison(benchmark):
    def run_all():
        results = []
        results.append(
            _run(
                lambda m: DropbackOptimizer(
                    m.parameters(),
                    DropbackConfig(
                        sparsity_factor=TARGET, lr=0.08,
                        selection="quantile", init_decay=0.9,
                        init_decay_zero_after=60,
                    ),
                ),
                "Procrustes",
            )
        )
        results.append(
            _run(
                lambda m: GradualMagnitudePruning(
                    m.parameters(),
                    GradualMagnitudePruningConfig(
                        target_sparsity_factor=TARGET, prune_interval=12,
                        prune_fraction=0.15, lr=0.05,
                    ),
                ),
                "gradual magnitude (Eager-Pruning-style)",
            )
        )
        results.append(
            _run(
                lambda m: DynamicSparseReparameterization(
                    m.parameters(), target_sparsity_factor=TARGET,
                    rewire_interval=12, rewire_fraction=0.1, lr=0.05,
                ),
                "dynamic sparse reparameterization",
            )
        )
        return results

    results = run_once(benchmark, run_all)
    print()
    print(render_table(
        ["algorithm", "best acc", "final sparsity", "mean sparsity"],
        [
            [
                r["label"],
                f"{r['accuracy']:.3f}",
                f"{r['final_sparsity']:.2f}x",
                f"{r['mean_sparsity']:.2f}x",
            ]
            for r in results
        ],
    ))
    by_label = {r["label"]: r for r in results}
    procrustes = by_label["Procrustes"]
    gradual = by_label["gradual magnitude (Eager-Pruning-style)"]
    # Procrustes is sparse throughout; gradual schemes average far less
    # sparsity over the run (the paper's energy argument).
    assert procrustes["mean_sparsity"] > gradual["mean_sparsity"]
    # All three learn the task.
    for r in results:
        assert r["accuracy"] > 0.5, r["label"]
