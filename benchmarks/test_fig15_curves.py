"""Figure 15: Procrustes vs. unpruned SGD on the CIFAR-10 stand-ins.

Paper: on VGG-S, DenseNet and WRN, Procrustes converges as fast as (or
faster than) the dense baseline while training a pruned model.
"""

import pytest

from benchmarks.conftest import run_once
from repro.harness import training_experiments as _training

format_curves = _training.entry_point("format_curves")
run_fig15_cifar_curves = _training.entry_point("run_fig15_cifar_curves")


pytestmark = pytest.mark.slow  # trains networks / heavy sweep


def test_fig15_procrustes_tracks_sgd(benchmark):
    results = run_once(
        benchmark, run_fig15_cifar_curves, ("vgg-s", "densenet"), 6
    )
    print()
    for network, (procrustes, baseline) in results.items():
        print(format_curves([procrustes, baseline], f"Figure 15 — {network}"))
        assert (
            procrustes.history.best_val_accuracy
            >= baseline.history.best_val_accuracy - 0.2
        ), network
        assert procrustes.achieved_sparsity > 2.0, network
