"""Figure 16: accuracy at several pruning ratios (ResNet18-style).

Paper: ResNet18 trains to baseline accuracy at 2.9x/5.8x/11.7x pruning
(and MobileNet v2 at 7x/10x); higher ratios are not slower to converge.
"""

import pytest

from benchmarks.conftest import run_once
from repro.harness import training_experiments as _training

format_curves = _training.entry_point("format_curves")
run_fig16_sparsity_sweep = _training.entry_point("run_fig16_sparsity_sweep")


pytestmark = pytest.mark.slow  # trains networks / heavy sweep


def test_fig16_sparsity_sweep(benchmark):
    results = run_once(
        benchmark, run_fig16_sparsity_sweep, "resnet18", (2.9, 5.8), 6
    )
    print()
    print(format_curves(list(results.values()), "Figure 16 — ResNet18"))
    baseline = results["baseline (SGD)"]
    for label, run in results.items():
        if label == "baseline (SGD)":
            continue
        assert (
            run.history.best_val_accuracy
            >= baseline.history.best_val_accuracy - 0.25
        ), label
