"""Sweep-engine smoke benchmark: cache warm-up and parallel fan-out.

Two acceptance properties of the shared sweep engine, demonstrated on
real workloads and printed for inspection:

* **warm cache** — re-running a refactored harness sweep (the
  Figure 18/19 dataflow grid, 16 points) against a populated result
  cache completes in well under 10% of its cold wall time, because no
  evaluator runs at all;
* **parallel fan-out** — the process-pool runner beats the serial
  path on a >= 16-point grid.  The guaranteed assertion uses a
  wait-bound grid (each point sleeps), which parallelizes on any
  machine including single-core CI runners; on multi-core machines
  the compute-bound simulator grid is also timed and asserted.
"""

from __future__ import annotations

import os
import time

from benchmarks.conftest import run_once
from repro.harness import arch_experiments as _arch

run_fig18_fig19_dataflows = _arch.entry_point("run_fig18_fig19_dataflows")
from repro.sweep import ResultCache, SweepSpec, run_sweep

#: 2 networks x dense/sparse x 4 mappings = 16 simulator evaluations.
GRID_NETWORKS = ("vgg-s", "resnet18")


def test_warm_cache_rerun(benchmark, tmp_path):
    cache = ResultCache(tmp_path / "sweep-cache")

    start = time.perf_counter()
    cold = run_fig18_fig19_dataflows(networks=GRID_NETWORKS, cache=cache)
    cold_s = time.perf_counter() - start

    start = time.perf_counter()
    warm = run_once(
        benchmark, run_fig18_fig19_dataflows,
        networks=GRID_NETWORKS, cache=cache,
    )
    warm_s = time.perf_counter() - start

    print()
    print(
        f"fig18/19 grid ({len(cold.rows)} points): "
        f"cold {cold_s:.2f}s, warm {warm_s:.3f}s "
        f"({warm_s / cold_s:.1%} of cold)"
    )
    assert len(cold.rows) == 16
    assert warm.rows == cold.rows  # cache round-trip is lossless
    assert cache.stats.hits == 16
    # The acceptance bar is <10% of cold wall time; in practice a warm
    # run is two orders of magnitude faster.
    assert warm_s < 0.10 * cold_s


def test_parallel_beats_serial_wait_bound(benchmark):
    """A 16-point wait-bound grid: fan-out wins on any core count."""
    spec = SweepSpec.grid(
        "engine-smoke-sleep", "echo",
        {"i": list(range(16))}, fixed={"sleep_s": 0.15},
    )
    start = time.perf_counter()
    serial = run_sweep(spec, executor="serial")
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    parallel = run_once(
        benchmark, run_sweep, spec, executor="process", workers=8
    )
    parallel_s = time.perf_counter() - start

    print()
    print(
        f"16-point wait-bound grid: serial {serial_s:.2f}s, "
        f"parallel {parallel_s:.2f}s "
        f"({serial_s / parallel_s:.1f}x speedup)"
    )
    assert parallel.rows() == serial.rows()
    assert parallel_s < serial_s


def test_parallel_simulator_grid():
    """The compute-bound Figure 18/19 grid through the process pool.

    Always checks correctness against the serial rows; only asserts a
    wall-time win where extra cores exist to provide one.
    """
    cores = os.cpu_count() or 1
    start = time.perf_counter()
    serial = run_fig18_fig19_dataflows(networks=GRID_NETWORKS)
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    parallel = run_fig18_fig19_dataflows(
        networks=GRID_NETWORKS, executor="process", workers=min(cores, 8)
    )
    parallel_s = time.perf_counter() - start

    print()
    print(
        f"fig18/19 grid on {cores} core(s): serial {serial_s:.2f}s, "
        f"process-pool {parallel_s:.2f}s"
    )
    assert parallel.rows == serial.rows
    if cores > 1:
        assert parallel_s < serial_s
