"""Ablation: how energy/speedup scale with the sparsity factor.

The paper evaluates each network at its Table II sparsity; this sweep
varies the factor on ResNet18 (2x / 4x / 8x / 11.7x / 16x) under the
K,N dataflow to expose the scaling law behind Figures 1 and 17:

* speedup and energy saving grow with sparsity but **sub-linearly** —
  load imbalance, partial tiles, and the activation-bound weight-update
  phase dilute the MAC reduction;
* the marginal return of pruning past ~10x is small, matching the
  paper's choice to stop at accuracy-preserving factors rather than
  chase deeper sparsity.
"""

from benchmarks.conftest import run_once
from repro.sweep import SweepSpec, run_sweep

FACTORS = (2.0, 4.0, 8.0, 11.7, 16.0)


def _sweep(network="resnet18", n=64):
    fixed = {"network": network, "mapping": "KN", "n": n}
    dense = run_sweep(
        SweepSpec.grid(
            "sparsity-sweep-dense",
            "simulate",
            {"sparse": [False]},
            fixed=fixed,
            base_seed=1,
        )
    ).points[0].values
    sweep = run_sweep(
        SweepSpec.grid(
            "sparsity-sweep-arch",
            "simulate",
            {"sparsity_factor": list(FACTORS)},
            fixed={**fixed, "sparse": True},
            base_seed=1,
        )
    )
    return {
        point.params["sparsity_factor"]: {
            "speedup": dense["total_cycles"] / point.values["total_cycles"],
            "energy_saving": dense["total_j"] / point.values["total_j"],
        }
        for point in sweep.points
    }


def test_sparsity_scaling(benchmark):
    rows = run_once(benchmark, _sweep)
    print()
    print("ResNet18, K,N dataflow: savings vs sparsity factor")
    print(f"{'factor':>8} {'speedup':>9} {'energy saving':>14}")
    for factor, row in rows.items():
        print(
            f"{factor:>7.1f}x {row['speedup']:>8.2f}x "
            f"{row['energy_saving']:>13.2f}x"
        )
    factors = list(rows)
    speedups = [rows[f]["speedup"] for f in factors]
    savings = [rows[f]["energy_saving"] for f in factors]
    # Monotone improvement with sparsity...
    assert speedups == sorted(speedups)
    assert savings == sorted(savings)
    # ...but sub-linear: 8x the sparsity buys much less than 8x.
    assert speedups[0] > 1.0
    gain_2x = speedups[0]
    gain_16x = speedups[-1]
    assert gain_16x / gain_2x < 8.0 / 2.0
    # Diminishing returns past ~10x: the last 37% factor increase
    # (11.7 -> 16) moves speedup by well under 37%.
    marginal = rows[16.0]["speedup"] / rows[11.7]["speedup"]
    assert marginal < 1.2
