"""Benchmark-suite configuration.

Each benchmark regenerates one table or figure of the paper and prints
the corresponding rows/series (captured by ``pytest -s`` or the
``--capture=no`` flag).  Heavy experiments run a single round — the
interesting output is the experiment result, not the wall time — but
timing still flows through pytest-benchmark so regressions show up.

Every test in this directory is tagged with the ``bench`` marker (so
CI can deselect the whole suite with ``-m "not bench"``); the
training-heavy ones additionally carry ``slow`` in their own modules.
"""

from __future__ import annotations

from pathlib import Path

import pytest

_BENCH_DIR = Path(__file__).parent


def pytest_collection_modifyitems(items):
    """Auto-apply the ``bench`` marker to everything under benchmarks/."""
    for item in items:
        try:
            in_bench_dir = Path(item.path).is_relative_to(_BENCH_DIR)
        except (TypeError, ValueError):
            in_bench_dir = False
        if in_bench_dir:
            item.add_marker(pytest.mark.bench)


def run_once(benchmark, func, *args, **kwargs):
    """Run an experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(
        func, args=args, kwargs=kwargs, rounds=1, iterations=1
    )
