"""Benchmark-suite configuration.

Each benchmark regenerates one table or figure of the paper and prints
the corresponding rows/series (captured by ``pytest -s`` or the
``--capture=no`` flag).  Heavy experiments run a single round — the
interesting output is the experiment result, not the wall time — but
timing still flows through pytest-benchmark so regressions show up.
"""

from __future__ import annotations


def run_once(benchmark, func, *args, **kwargs):
    """Run an experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(
        func, args=args, kwargs=kwargs, rounds=1, iterations=1
    )
