"""Section II-D: sparse weight formats under training access patterns.

The paper argues qualitatively that the CSC-style formats of sparse
*inference* accelerators (EIE, SCNN) cannot serve the backward pass:
"EIE stores non-zero entries as an interleaved CSC format ... but makes
it impossible to calculate addresses within a column of W**T in the
backward pass", and SCNN's layout "would need to compute addresses for
all filters from one output channel, which is not possible due to
varying filter sparsity".

This bench makes that argument quantitative: for a Dropback-sparse
conv layer and fc layer, it tabulates the elements a decoder touches
to stream the tensor in each training phase's access order.  Expected
shape: CSB is access-order neutral (backward/forward = 1.0) while both
rivals pay multiples on the backward pass and cannot update in place.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.sparse.rivals import access_costs


def _masked_weights(rng, shape, density):
    dense = rng.normal(size=shape)
    dense[rng.uniform(size=shape) > density] = 0.0
    return dense


def _comparison(seed=7):
    rng = np.random.default_rng(seed)
    # VGG-S mid-network conv (256x256x3x3 at ~19% density = 5.2x) and
    # its classifier fc, the shapes the paper's Figure 5/13 workloads
    # exercise; scaled to keep the bench fast.
    conv = _masked_weights(rng, (64, 64, 3, 3), density=0.19)
    fc = _masked_weights(rng, (256, 128), density=0.19)
    return {
        "conv": access_costs(conv),
        "fc": access_costs(fc),
    }


def _format_table(results):
    lines = [
        f"{'layer':6} {'format':14} {'fw':>10} {'bw':>12} "
        f"{'bw/fw':>7} {'storage(Kb)':>12} {'in-place wu':>12}"
    ]
    for layer, table in results.items():
        for c in table:
            lines.append(
                f"{layer:6} {c.format_name:14} {c.forward:>10} "
                f"{c.backward:>12} {c.backward_penalty:>7.2f} "
                f"{c.storage_bits / 1024:>12.1f} "
                f"{'yes' if c.updatable else 'no':>12}"
            )
    return "\n".join(lines)


def test_format_access_costs(benchmark):
    results = run_once(benchmark, _comparison)
    print()
    print("Format comparison (Section II-D)")
    print(_format_table(results))
    for layer, table in results.items():
        csb, rivals = table[0], table[1:]
        assert csb.backward_penalty == 1.0
        assert csb.updatable
        for rival in rivals:
            # Every rival pays a significant multiple on the backward
            # pass and cannot update weights in place.
            assert rival.backward_penalty > 1.5, (layer, rival.format_name)
            assert not rival.updatable


def test_csb_storage_competitive(benchmark):
    """CSB's mask+pointer overhead stays within ~2x of the leanest
    rival encoding at training sparsity levels, while being the only
    format usable in all three phases."""
    results = run_once(benchmark, _comparison)
    for layer, table in results.items():
        csb = table[0]
        best_rival = min(c.storage_bits for c in table[1:])
        assert csb.storage_bits < 2.0 * best_rival, layer
