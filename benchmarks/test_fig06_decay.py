"""Figure 6: validation accuracy with and without initial-weight decay.

Paper: decaying initial weights 0.9x per iteration (zero by iteration
1,000) affects neither accuracy nor convergence time, while creating
computation sparsity (60% of MACs skippable in 99.5% of iterations).
"""

import pytest

from benchmarks.conftest import run_once
from repro.harness import training_experiments as _training

format_curves = _training.entry_point("format_curves")
run_fig06_decay = _training.entry_point("run_fig06_decay")


pytestmark = pytest.mark.slow  # trains networks / heavy sweep


def test_fig06_decay_costs_no_accuracy(benchmark):
    decayed, plain = run_once(benchmark, run_fig06_decay, 8)
    print()
    print(format_curves([decayed, plain], "Figure 6 — init decay vs none"))
    assert (
        decayed.history.best_val_accuracy
        >= plain.history.best_val_accuracy - 0.15
    )
    # Decay is what makes pruned weights exact zeros.
    assert decayed.achieved_sparsity > 1.5
