"""Section VII-A: Procrustes vs. the Eager Pruning accelerator.

The paper's comparison with the only prior sparse-training accelerator
is qualitative: Eager Pruning load-balances by spreading denser
filters over more PEs, which requires a psum-combining module, and its
algorithm relies on a weight sort "not considered in the hardware".
This bench runs both dataflows on identical VGG-S-shaped masks:

* at matched sparsity, Eager's PE allocation balances about as well
  as Procrustes' half-tile scheme — but every split filter pays
  combining-module traffic that the K,N dataflow simply never creates;
* the sorting step Eager leaves unaccounted costs megacycles per
  prune round at real weight counts;
* at each algorithm's *own* achievable sparsity (2.4x vs. 11.7x), the
  MAC gap dwarfs dataflow effects entirely.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.dataflow.eager_accel import EagerPruningAccelerator, sorting_cycles
from repro.hw.config import PROCRUSTES_16x16
from repro.hw.cyclesim import CycleLevelSimulator, IDEAL_FABRIC


def _mask(rng, density, shape=(64, 64, 3, 3)):
    return rng.uniform(size=shape) < density


def _compare(seed=5):
    rng = np.random.default_rng(seed)
    p = q = 8
    n = 16
    eager = EagerPruningAccelerator(PROCRUSTES_16x16)
    procrustes = CycleLevelSimulator(PROCRUSTES_16x16, IDEAL_FABRIC)

    out = {}
    for label, density in (("eager@2.4x", 1 / 2.4), ("both@5.2x", 1 / 5.2),
                           ("procrustes@11.7x", 1 / 11.7)):
        mask = _mask(rng, density)
        e = eager.run_conv(mask, p=p, q=q, n=n)
        k = procrustes.run_conv(mask, p=p, q=q, n=n, mapping="KN",
                                balance=True)
        out[label] = {
            "eager_cycles": e.cycles,
            "eager_util": e.utilization,
            "eager_router_words": e.router_words,
            "kn_cycles": k.cycles,
            "kn_util": k.utilization,
        }
    out["sorting_megacycles_vggs"] = sorting_cycles(15_000_000) / 1e6
    return out


def test_eager_vs_procrustes(benchmark):
    rows = run_once(benchmark, _compare)
    sorting = rows.pop("sorting_megacycles_vggs")
    print()
    print("Eager Pruning dataflow vs Procrustes K,N (64x64x3x3 conv, n=16)")
    print(
        f"{'sparsity':18} {'eager cyc':>10} {'util':>6} {'router wd':>10} "
        f"{'KN-bal cyc':>11} {'util':>6}"
    )
    for label, row in rows.items():
        print(
            f"{label:18} {row['eager_cycles']:>10.0f} "
            f"{row['eager_util']:>6.1%} {row['eager_router_words']:>10.0f} "
            f"{row['kn_cycles']:>11.0f} {row['kn_util']:>6.1%}"
        )
    print(f"unaccounted sort per prune round (VGG-S, 256 comparators): "
          f"{sorting:.1f} Mcycles")

    matched = rows["both@5.2x"]
    # Both dataflows balance well at matched sparsity...
    assert matched["eager_util"] > 0.6
    assert matched["kn_util"] > 0.6
    # ...but only Eager pays combining-module traffic.
    assert matched["eager_router_words"] > 0
    # The algorithms' achievable sparsity dominates: Procrustes at
    # 11.7x beats Eager at its 2.4x by a wide cycle margin.
    assert (
        rows["procrustes@11.7x"]["kn_cycles"]
        < 0.5 * rows["eager@2.4x"]["eager_cycles"]
    )
    # And the ignored sort alone is megacycles per round.
    assert sorting > 1.0
