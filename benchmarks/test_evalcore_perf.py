"""Perf-regression benchmark for the evaluation core (evalcore).

Two subsets, split so CI can gate on correctness without gating on
shared-runner timing noise:

* ``parity`` tests (``-k parity``) — **blocking**: the vectorized
  kernels must stay bit-identical to the kept loop references on a
  real network.
* ``perf`` tests (``-k perf``) — **non-blocking** in CI: measure the
  cold single-pass speedup over the reconstructed pre-optimization
  baseline (reference kernels + exact sampling + no memo), the warm,
  memoized 120-candidate explorer re-run, and the batched
  multi-candidate executor against the looped serial path on the same
  cold 120-candidate explore, then compare the achieved speedups
  against the committed ``BENCH_evalcore.json`` with a generous 2x
  regression threshold.

The ``parity`` subset includes the batched evaluation path: one
``evaluate_candidates`` pass must be bit-identical to per-candidate
``evaluate_network`` walks on a real network, across all mappings,
phases, and both sampling modes — that is what licenses the perf
comparison as apples-to-apples.

Every perf run writes ``BENCH_evalcore.fresh.json`` next to the
baseline (uploaded as a CI artifact); refresh the committed baseline
by running with ``REPRO_BENCH_WRITE=1``:

    REPRO_BENCH_WRITE=1 python -m pytest benchmarks/test_evalcore_perf.py -q -s
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.dataflow import evalcore
from repro.dataflow.mapping import MAPPINGS, allowed_balancing
from repro.dataflow.simulator import simulate
from repro.dataflow.tiling import build_sets, build_sets_reference
from repro.harness.common import model_entry, sparse_profile_for
from repro.hw.config import PROCRUSTES_16x16
from repro.workloads.phases import PHASES, phase_op

BASELINE_PATH = Path(__file__).parent / "BENCH_evalcore.json"
FRESH_PATH = Path(__file__).parent / "BENCH_evalcore.fresh.json"

#: A fresh run may be up to this factor slower than the committed
#: baseline's *speedups* before the perf tests complain.
REGRESSION_FACTOR = 2.0

_fresh: dict[str, float] = {}


def _baseline() -> dict:
    return json.loads(BASELINE_PATH.read_text())


def _record(**values: float) -> None:
    _fresh.update(values)
    payload = {**_baseline(), **_fresh}
    FRESH_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    if os.environ.get("REPRO_BENCH_WRITE") == "1":
        BASELINE_PATH.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )


def _simulate_all_mappings(profile, n: int) -> None:
    for mapping in MAPPINGS:
        simulate(profile, mapping, n=n, seed=0)


def test_parity_on_vgg_s_layers():
    """Blocking: fast kernels == loop references, bit for bit."""
    profile = sparse_profile_for("vgg-s")
    for ls in profile.layers[:: max(1, len(profile.layers) // 6)]:
        for mapping in MAPPINGS:
            for phase in PHASES:
                op = phase_op(ls.layer, phase, 16)
                balance = allowed_balancing(mapping, phase)
                fast = build_sets(
                    op, mapping, PROCRUSTES_16x16, ls,
                    np.random.default_rng(2), sparse=True, balance=balance,
                )
                reference = build_sets_reference(
                    op, mapping, PROCRUSTES_16x16, ls,
                    np.random.default_rng(2), sparse=True, balance=balance,
                )
                for field in (
                    "max_work", "mean_work", "sum_work", "busy_pes", "weight"
                ):
                    np.testing.assert_array_equal(
                        getattr(fast, field),
                        getattr(reference, field),
                        err_msg=f"{ls.layer.name}/{mapping}/{phase}/{field}",
                    )


def test_perf_cold_simulate_speedup():
    """Cold full-iteration simulate (all four mappings) on VGG-S:
    the single-pass vectorized core must be >= 5x the pre-optimization
    reference path."""
    profile = sparse_profile_for("vgg-s")
    n = model_entry("vgg-s").minibatch

    previous_memo = evalcore.set_memo(None)  # cold means cold
    try:
        _simulate_all_mappings(profile, n)  # warm caches of the OS/NumPy
        fast_s = min(
            _timed(_simulate_all_mappings, profile, n) for _ in range(3)
        )
        with evalcore.reference_implementation():
            reference_s = _timed(_simulate_all_mappings, profile, n)
    finally:
        evalcore.set_memo(previous_memo)

    speedup = reference_s / fast_s
    print(
        f"\ncold VGG-S simulate x4 mappings: reference {reference_s:.3f}s, "
        f"fast {fast_s:.3f}s -> {speedup:.1f}x"
    )
    _record(
        cold_reference_s=round(reference_s, 4),
        cold_fast_s=round(fast_s, 4),
        cold_speedup=round(speedup, 2),
    )
    assert speedup >= 5.0, f"cold speedup regressed: {speedup:.2f}x < 5x"
    floor = _baseline()["cold_speedup"] / REGRESSION_FACTOR
    assert speedup >= floor, (
        f"cold speedup {speedup:.2f}x fell below baseline "
        f"{_baseline()['cold_speedup']}x / {REGRESSION_FACTOR}"
    )


def test_parity_batched_vs_looped_on_vgg_s():
    """Blocking: one ``evaluate_candidates`` pass == per-candidate
    ``evaluate_network`` walks, bit for bit, on VGG-S layers across
    all mappings, phases, balance settings, and both sampling modes."""
    from repro.dataflow import sampling
    from repro.dataflow.batcheval import MappingCandidate, evaluate_candidates

    profile = sparse_profile_for("vgg-s")
    subset = type(profile)(
        name=profile.name,
        layers=tuple(profile.layers[:: max(1, len(profile.layers) // 6)]),
    )
    candidates = [
        MappingCandidate(mapping, PROCRUSTES_16x16, n=16, balance=balance,
                         seed=seed)
        for mapping in MAPPINGS
        for balance in (True, False)
        for seed in (0, 3)
    ]
    for exact in (False, True):
        with sampling.sampling_mode(exact=exact):
            batch = evaluate_candidates(subset, candidates, memo=None)
            for cand, evaluation in zip(candidates, batch):
                loop = evalcore.evaluate_network(
                    subset, cand.mapping, cand.arch, cand.n,
                    sparse=cand.sparse, balance=cand.balance,
                    seed=cand.seed, memo=None,
                )
                for phase in PHASES:
                    for a, b in zip(
                        evaluation.layers[phase], loop.layers[phase]
                    ):
                        where = (
                            f"{cand.mapping}/bal={cand.balance}/"
                            f"seed={cand.seed}/exact={exact}/"
                            f"{phase}/{b.layer_name}"
                        )
                        assert a.cycles == b.cycles, where
                        assert a.macs == b.macs, where
                        for field in (
                            "max_work", "mean_work", "sum_work",
                            "busy_pes", "weight",
                        ):
                            np.testing.assert_array_equal(
                                getattr(a.sets, field),
                                getattr(b.sets, field),
                                err_msg=f"{where}/{field}",
                            )


def test_perf_batched_explore_speedup(tmp_path):
    """The batched executor on a cold 120-candidate explore must be
    >= 3x the looped serial path (same candidates, same results —
    the parity tests above license the comparison)."""
    from repro.harness.explore_experiments import run_explore

    looped_s = _timed(
        run_explore, budget=120, strategy="random",
        cache_dir=str(tmp_path / "looped"), executor="serial",
    )
    batched_s = _timed(
        run_explore, budget=120, strategy="random",
        cache_dir=str(tmp_path / "batched"), executor="batched",
    )
    speedup = looped_s / batched_s
    print(
        f"\ncold 120-candidate explore: looped {looped_s:.2f}s, "
        f"batched {batched_s:.2f}s -> {speedup:.1f}x"
    )
    _record(
        explore_looped_s=round(looped_s, 3),
        explore_batched_s=round(batched_s, 3),
        batched_speedup=round(speedup, 2),
    )
    assert speedup >= 3.0, (
        f"batched explore speedup {speedup:.2f}x < 3x over looped"
    )
    floor = _baseline()["batched_speedup"] / REGRESSION_FACTOR
    assert speedup >= floor, (
        f"batched speedup {speedup:.2f}x fell below baseline "
        f"{_baseline()['batched_speedup']}x / {REGRESSION_FACTOR}"
    )


def test_perf_warm_explore_memoized(tmp_path):
    """A warm (sweep-cached + layer-memoized) 120-candidate explorer
    re-run must be >= 20x the cold run."""
    from repro.harness.explore_experiments import run_explore

    cache_dir = str(tmp_path / "cache")
    cold_s = _timed(
        run_explore, budget=120, strategy="random", cache_dir=cache_dir
    )
    warm_s = _timed(
        run_explore, budget=120, strategy="random", cache_dir=cache_dir
    )
    speedup = cold_s / warm_s
    print(
        f"\n120-candidate explore: cold {cold_s:.2f}s, warm {warm_s:.3f}s "
        f"-> {speedup:.0f}x"
    )
    _record(
        explore_cold_s=round(cold_s, 3),
        explore_warm_s=round(warm_s, 4),
        warm_speedup=round(speedup, 1),
    )
    assert speedup >= 20.0, f"warm explore speedup {speedup:.1f}x < 20x"
    floor = _baseline()["warm_speedup"] / REGRESSION_FACTOR
    assert speedup >= floor, (
        f"warm speedup {speedup:.1f}x fell below baseline "
        f"{_baseline()['warm_speedup']}x / {REGRESSION_FACTOR}"
    )


def test_perf_layer_memo_shares_work_across_candidates():
    """Within one cold explorer-style pass, candidates that differ
    only in GLB capacity share every working set through the layer
    memo (GLB is not part of the content key)."""
    from dataclasses import replace

    profile = sparse_profile_for("vgg-s")
    n = model_entry("vgg-s").minibatch
    memo = evalcore.EvalMemo()
    evalcore.evaluate_network(
        profile, "KN", PROCRUSTES_16x16, n, memo=memo
    )
    stores = memo.stats.stores
    bigger_glb = replace(PROCRUSTES_16x16, glb_bytes=512 * 1024)
    evalcore.evaluate_network(profile, "KN", bigger_glb, n, memo=memo)
    assert memo.stats.stores == stores  # nothing rebuilt
    assert memo.stats.hits >= stores


def _timed(fn, *args, **kwargs) -> float:
    start = time.perf_counter()
    fn(*args, **kwargs)
    return time.perf_counter() - start


def test_telemetry_disabled_overhead_within_noise():
    """Blocking: disabled telemetry costs < 3% of a cold simulate.

    Counts how many spans and counter updates one cold VGG-S simulate
    emits when telemetry is forced on, times the disabled no-op paths
    (``span()`` returning the null singleton, guarded ``inc()``) in
    tight loops, and bounds the product — the per-call no-op cost never
    re-enters the hot path as a measurable tax.
    """
    from repro.api.config import config_scope
    from repro.obs import metrics as obs_metrics
    from repro.obs import trace as obs_trace

    profile = sparse_profile_for("vgg-s")
    n = model_entry("vgg-s").minibatch

    previous_memo = evalcore.set_memo(None)
    try:
        # How much telemetry would a cold walk emit, were it enabled?
        with config_scope(metrics=True):
            before = obs_metrics.registry().snapshot()
            with obs_trace.capture() as buf:
                _simulate_all_mappings(profile, n)
            emitted = obs_metrics.registry().diff(before)
        n_spans = len(buf)
        n_counts = sum(emitted.counters.values()) + sum(
            h["count"] for h in emitted.histograms.values()
        )
        assert n_spans > 0  # the walk really is instrumented

        # The same walk, telemetry off (the shipped default).
        cold_s = min(
            _timed(_simulate_all_mappings, profile, n) for _ in range(3)
        )
    finally:
        evalcore.set_memo(previous_memo)

    # Per-call cost of the disabled fast paths, measured directly.
    reps = 100_000
    assert not obs_trace.tracing_enabled()
    assert not obs_metrics.metrics_enabled()
    span_s = _timed(
        lambda: [obs_trace.span("bench.noop", layer="x") for _ in range(reps)]
    )
    inc_s = _timed(
        lambda: [obs_metrics.inc("bench.noop") for _ in range(reps)]
    )
    overhead_s = (n_spans * span_s + n_counts * inc_s) / reps
    share = overhead_s / cold_s
    print(
        f"\ntelemetry-off overhead: {n_spans} spans + {n_counts} counts "
        f"-> {overhead_s * 1e6:.1f}us over {cold_s:.3f}s cold walk "
        f"({share * 100:.4f}%)"
    )
    _record(
        telemetry_off_overhead_share=round(share, 6),
        telemetry_spans_per_cold_walk=n_spans,
    )
    assert share < 0.03, (
        f"disabled telemetry overhead {share * 100:.2f}% >= 3% of a "
        f"cold VGG-S simulate"
    )
