"""Perf-regression benchmark for the evaluation core (evalcore).

Two subsets, split so CI can gate on correctness without gating on
shared-runner timing noise:

* ``parity`` tests (``-k parity``) — **blocking**: the vectorized
  kernels must stay bit-identical to the kept loop references on a
  real network.
* ``perf`` tests (``-k perf``) — **non-blocking** in CI: measure the
  cold single-pass speedup over the reconstructed pre-optimization
  baseline (reference kernels + exact sampling + no memo) and the
  warm, memoized 120-candidate explorer re-run, then compare the
  achieved speedups against the committed ``BENCH_evalcore.json``
  with a generous 2x regression threshold.

Every perf run writes ``BENCH_evalcore.fresh.json`` next to the
baseline (uploaded as a CI artifact); refresh the committed baseline
by running with ``REPRO_BENCH_WRITE=1``:

    REPRO_BENCH_WRITE=1 python -m pytest benchmarks/test_evalcore_perf.py -q -s
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.dataflow import evalcore
from repro.dataflow.mapping import MAPPINGS, allowed_balancing
from repro.dataflow.simulator import simulate
from repro.dataflow.tiling import build_sets, build_sets_reference
from repro.harness.common import model_entry, sparse_profile_for
from repro.hw.config import PROCRUSTES_16x16
from repro.workloads.phases import PHASES, phase_op

BASELINE_PATH = Path(__file__).parent / "BENCH_evalcore.json"
FRESH_PATH = Path(__file__).parent / "BENCH_evalcore.fresh.json"

#: A fresh run may be up to this factor slower than the committed
#: baseline's *speedups* before the perf tests complain.
REGRESSION_FACTOR = 2.0

_fresh: dict[str, float] = {}


def _baseline() -> dict:
    return json.loads(BASELINE_PATH.read_text())


def _record(**values: float) -> None:
    _fresh.update(values)
    payload = {**_baseline(), **_fresh}
    FRESH_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    if os.environ.get("REPRO_BENCH_WRITE") == "1":
        BASELINE_PATH.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )


def _simulate_all_mappings(profile, n: int) -> None:
    for mapping in MAPPINGS:
        simulate(profile, mapping, n=n, seed=0)


def test_parity_on_vgg_s_layers():
    """Blocking: fast kernels == loop references, bit for bit."""
    profile = sparse_profile_for("vgg-s")
    for ls in profile.layers[:: max(1, len(profile.layers) // 6)]:
        for mapping in MAPPINGS:
            for phase in PHASES:
                op = phase_op(ls.layer, phase, 16)
                balance = allowed_balancing(mapping, phase)
                fast = build_sets(
                    op, mapping, PROCRUSTES_16x16, ls,
                    np.random.default_rng(2), sparse=True, balance=balance,
                )
                reference = build_sets_reference(
                    op, mapping, PROCRUSTES_16x16, ls,
                    np.random.default_rng(2), sparse=True, balance=balance,
                )
                for field in (
                    "max_work", "mean_work", "sum_work", "busy_pes", "weight"
                ):
                    np.testing.assert_array_equal(
                        getattr(fast, field),
                        getattr(reference, field),
                        err_msg=f"{ls.layer.name}/{mapping}/{phase}/{field}",
                    )


def test_perf_cold_simulate_speedup():
    """Cold full-iteration simulate (all four mappings) on VGG-S:
    the single-pass vectorized core must be >= 5x the pre-optimization
    reference path."""
    profile = sparse_profile_for("vgg-s")
    n = model_entry("vgg-s").minibatch

    previous_memo = evalcore.set_memo(None)  # cold means cold
    try:
        _simulate_all_mappings(profile, n)  # warm caches of the OS/NumPy
        fast_s = min(
            _timed(_simulate_all_mappings, profile, n) for _ in range(3)
        )
        with evalcore.reference_implementation():
            reference_s = _timed(_simulate_all_mappings, profile, n)
    finally:
        evalcore.set_memo(previous_memo)

    speedup = reference_s / fast_s
    print(
        f"\ncold VGG-S simulate x4 mappings: reference {reference_s:.3f}s, "
        f"fast {fast_s:.3f}s -> {speedup:.1f}x"
    )
    _record(
        cold_reference_s=round(reference_s, 4),
        cold_fast_s=round(fast_s, 4),
        cold_speedup=round(speedup, 2),
    )
    assert speedup >= 5.0, f"cold speedup regressed: {speedup:.2f}x < 5x"
    floor = _baseline()["cold_speedup"] / REGRESSION_FACTOR
    assert speedup >= floor, (
        f"cold speedup {speedup:.2f}x fell below baseline "
        f"{_baseline()['cold_speedup']}x / {REGRESSION_FACTOR}"
    )


def test_perf_warm_explore_memoized(tmp_path):
    """A warm (sweep-cached + layer-memoized) 120-candidate explorer
    re-run must be >= 20x the cold run."""
    from repro.harness.explore_experiments import run_explore

    cache_dir = str(tmp_path / "cache")
    cold_s = _timed(
        run_explore, budget=120, strategy="random", cache_dir=cache_dir
    )
    warm_s = _timed(
        run_explore, budget=120, strategy="random", cache_dir=cache_dir
    )
    speedup = cold_s / warm_s
    print(
        f"\n120-candidate explore: cold {cold_s:.2f}s, warm {warm_s:.3f}s "
        f"-> {speedup:.0f}x"
    )
    _record(
        explore_cold_s=round(cold_s, 3),
        explore_warm_s=round(warm_s, 4),
        warm_speedup=round(speedup, 1),
    )
    assert speedup >= 20.0, f"warm explore speedup {speedup:.1f}x < 20x"
    floor = _baseline()["warm_speedup"] / REGRESSION_FACTOR
    assert speedup >= floor, (
        f"warm speedup {speedup:.1f}x fell below baseline "
        f"{_baseline()['warm_speedup']}x / {REGRESSION_FACTOR}"
    )


def test_perf_layer_memo_shares_work_across_candidates():
    """Within one cold explorer-style pass, candidates that differ
    only in GLB capacity share every working set through the layer
    memo (GLB is not part of the content key)."""
    from dataclasses import replace

    profile = sparse_profile_for("vgg-s")
    n = model_entry("vgg-s").minibatch
    memo = evalcore.EvalMemo()
    evalcore.evaluate_network(
        profile, "KN", PROCRUSTES_16x16, n, memo=memo
    )
    stores = memo.stats.stores
    bigger_glb = replace(PROCRUSTES_16x16, glb_bytes=512 * 1024)
    evalcore.evaluate_network(profile, "KN", bigger_glb, n, memo=memo)
    assert memo.stats.stores == stores  # nothing rebuilt
    assert memo.stats.hits >= stores


def _timed(fn, *args, **kwargs) -> float:
    start = time.perf_counter()
    fn(*args, **kwargs)
    return time.perf_counter() - start
