"""Explorer acceptance benchmark: a real Pareto search, warm and cold.

The acceptance properties of the design-space explorer, demonstrated
on the harness's default space and printed for inspection:

* the default search evaluates >= 100 candidate configurations and
  returns a non-trivial frontier (>= 2 non-dominated points — the
  latency/area trade-off alone guarantees that);
* a warm re-exploration against the populated sweep cache completes
  in under 10% of the cold wall time, because every candidate is
  restored from disk and only dominance checks run.
"""

from __future__ import annotations

import time

from repro.explore import frontier_diff
from repro.harness.explore_experiments import run_explore

BUDGET = 120


def test_explore_cold_then_warm(tmp_path):
    cache_dir = str(tmp_path / "explore-cache")

    start = time.perf_counter()
    cold = run_explore(budget=BUDGET, cache_dir=cache_dir)
    cold_s = time.perf_counter() - start

    start = time.perf_counter()
    warm = run_explore(budget=BUDGET, cache_dir=cache_dir)
    warm_s = time.perf_counter() - start

    print()
    print(
        f"explore ({cold.n_evaluated} candidates): cold {cold_s:.1f}s, "
        f"warm {warm_s:.2f}s ({warm_s / cold_s:.1%} of cold), "
        f"frontier {len(cold.frontier)} points"
    )
    assert cold.n_evaluated >= 100
    assert len(cold.frontier) >= 2
    assert cold.n_cached == 0
    # Warm run: identical search, every evaluation from cache.
    assert warm.n_cached == warm.n_evaluated == cold.n_evaluated
    assert frontier_diff(warm.frontier, cold.frontier).unchanged
    assert warm_s < 0.10 * cold_s
