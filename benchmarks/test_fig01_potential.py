"""Figure 1: ideal energy savings and speedup of sparse training.

Paper: leveraging 5x sparsity on VGG-S with perfect load balancing,
zero-overhead compression, and free selection yields up to 2.6x
speedup and 2.3x energy savings over the whole network.
"""

from benchmarks.conftest import run_once
from repro.harness import arch_experiments as _arch

format_fig01 = _arch.entry_point("format_fig01")
run_fig01_potential = _arch.entry_point("run_fig01_potential")


def test_fig01_ideal_potential(benchmark):
    result = run_once(benchmark, run_fig01_potential, "vgg-s", 5.0)
    print()
    print(format_fig01(result))
    assert 1.8 < result.speedup() < 4.0
    assert 1.8 < result.energy_saving() < 3.5
