"""The interconnect argument, priced: simple fabric vs. alternatives.

Section IV-C argues Procrustes' K,N dataflow avoids "the need for a
complex interconnect"; Figures 10/12 show what balancing would require
under the weight-stationary C,K mapping, and Figure 20's scalability
assumes the fabric stays cheap as the array quadruples.

This bench prices the three options with the first-order wire/area
model (PE pitch derived from Table III synthesis numbers):

* ``simple-3net`` — the Figure 14 fabric (two 1-D flows + unicast);
* ``balanced-CK`` — doubled bus planes + psum combiner (Figure 10);
* ``crossbar``   — any-to-any scatter (SCNN/Eager-Pruning-style).

Expected shape: the simple fabric's share of the die stays flat
(~7-8 %) from 8x8 to 64x64, while balanced-CK and crossbar shares
climb steeply — at 32x32 the crossbar alone would exceed the PE
array's own area.
"""

from benchmarks.conftest import run_once
from repro.sweep import SweepSpec, run_sweep

SIDES = (8, 16, 32, 64)


def _sweep():
    sweep = run_sweep(
        SweepSpec.grid(
            "interconnect-scaling", "fabric-cost", {"side": list(SIDES)}
        )
    )
    return {
        int(point.params["side"]): point.values["options"]
        for point in sweep.points
    }


def test_fabric_scaling(benchmark):
    table = run_once(benchmark, _sweep)
    print()
    print("Interconnect cost vs. array size (area fraction of PE array)")
    names = ["simple-3net", "balanced-CK", "crossbar"]
    header = f"{'array':>7} " + " ".join(f"{n:>13}" for n in names)
    print(header)
    for side, row in table.items():
        cells = " ".join(f"{row[n]['fraction']:>12.1%} " for n in names)
        print(f"{side:>4}x{side:<3}{cells}")
    print()
    print("Per-word horizontal transfer energy (pJ)")
    for side, row in table.items():
        cells = " ".join(f"{row[n]['h_pj']:>12.1f} " for n in names)
        print(f"{side:>4}x{side:<3}{cells}")

    # The simple fabric's die share is scale-invariant.
    fracs = [table[s]["simple-3net"]["fraction"] for s in SIDES]
    assert max(fracs) / min(fracs) < 1.2
    assert max(fracs) < 0.10
    # The complex options' shares climb with scale and dominate.
    for name in ("balanced-CK", "crossbar"):
        shares = [table[s][name]["fraction"] for s in SIDES]
        assert shares == sorted(shares)
        assert shares[-1] > 3.0 * shares[0]
    # At the paper's 16x16 design point, even the cheaper complex
    # option costs ~4x the simple fabric's area — far more than the
    # 14% whole-chip overhead of all Procrustes additions combined.
    at16 = table[16]
    assert at16["balanced-CK"]["area_mm2"] > 3.0 * at16["simple-3net"]["area_mm2"]
