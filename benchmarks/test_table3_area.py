"""Table III: silicon area and power costs of the Procrustes units.

Paper: 14% area and 11% power overhead versus the equivalent dense
accelerator, dominated by the per-PE mask memory; the WR PRNG pales
next to the FP32 MAC.
"""

import pytest

from benchmarks.conftest import run_once
from repro.harness.tables import format_table3, run_table3


def test_table3_overheads(benchmark):
    result = run_once(benchmark, run_table3)
    print()
    print(format_table3(result))
    assert result.area_overhead == pytest.approx(0.14, abs=0.01)
    assert result.power_overhead == pytest.approx(0.11, abs=0.01)


def test_table3_scaling_with_array_size(benchmark):
    """Per-PE overheads stay proportionate as the array grows."""
    result = run_once(benchmark, run_table3, 1024)
    print(f"\n1024-PE overheads: area {result.area_overhead:.1%}, "
          f"power {result.power_overhead:.1%}")
    assert result.area_overhead == pytest.approx(0.16, abs=0.03)
