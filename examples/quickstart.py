"""Quickstart: sparse-from-scratch training plus accelerator simulation.

Trains a small VGG-style network with the Procrustes algorithm
(Dropback + initial-weight decay + streaming quantile selection) on a
synthetic image-classification task, then runs the same network's
dense baseline, and finally asks the architecture model what the
sparsity is worth on the 16x16-PE accelerator.

Run:  python examples/quickstart.py
"""

from repro.core import DropbackConfig, DropbackOptimizer
from repro.dataflow import simulate
from repro.harness.common import dense_profile_for, sparse_profile_for
from repro.hw import BASELINE_16x16, PROCRUSTES_16x16
from repro.models import mini_vgg_s
from repro.nn import SGD, Trainer, make_blob_images


def main() -> None:
    train, val = make_blob_images(
        n_classes=6, samples_per_class=60, size=16, seed=7
    )

    # ------------------------------------------------------------------
    # 1. Procrustes sparse training: only 1 weight in 5 is ever tracked.
    # ------------------------------------------------------------------
    model = mini_vgg_s(n_classes=train.n_classes, seed=0)
    config = DropbackConfig(
        sparsity_factor=5.0,
        lr=0.08,
        selection="quantile",  # streaming DUMIQUE threshold, no sorting
        init_decay=0.9,  # pruned weights decay to exact zero
        init_decay_zero_after=60,
    )
    optimizer = DropbackOptimizer(model.parameters(), config)
    trainer = Trainer(model, optimizer, train, val, batch_size=16, seed=0)
    history = trainer.run(epochs=8)
    print("Procrustes sparse training")
    print(f"  final validation accuracy: {history.final_val_accuracy:.3f}")
    print(f"  achieved sparsity: {optimizer.achieved_sparsity_factor():.2f}x")
    print(f"  quantile threshold: {optimizer.threshold:.3e}")
    print(f"  pruned weights exact zeros: {optimizer.computation_is_sparse()}")

    # ------------------------------------------------------------------
    # 2. Dense SGD baseline on the identical task and architecture.
    # ------------------------------------------------------------------
    baseline = mini_vgg_s(n_classes=train.n_classes, seed=0)
    # Momentum compounds the step (~lr/(1-momentum)); 0.02 with 0.9
    # matches the sparse run's plain-SGD 0.08.
    sgd = SGD(baseline.parameters(), lr=0.02, momentum=0.9)
    dense_history = Trainer(
        baseline, sgd, train, val, batch_size=16, seed=0
    ).run(epochs=8)
    print("dense SGD baseline")
    print(f"  final validation accuracy: {dense_history.final_val_accuracy:.3f}")

    # ------------------------------------------------------------------
    # 3. What is that sparsity worth in hardware?  (paper-scale VGG-S)
    # ------------------------------------------------------------------
    sparse_sim = simulate(
        sparse_profile_for("vgg-s"), "KN", arch=PROCRUSTES_16x16, n=64
    )
    dense_sim = simulate(
        dense_profile_for("vgg-s"), "KN", arch=BASELINE_16x16, n=64,
        sparse=False,
    )
    print("accelerator model (paper-scale VGG-S, K,N dataflow, N=64)")
    print(f"  speedup:       {dense_sim.total_cycles / sparse_sim.total_cycles:.2f}x")
    print(f"  energy saving: {dense_sim.total_energy_j / sparse_sim.total_energy_j:.2f}x")
    print(f"  sparse energy by component: "
          f"{ {k: round(v, 3) for k, v in sparse_sim.energy_components().items()} }")


if __name__ == "__main__":
    main()
