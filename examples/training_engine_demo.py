"""Behavioural engine demo: training iterations through CSB weights.

Part 1 runs the forward, backward, and weight-update phases of a
sparse conv layer with the weights held *only* in compressed-sparse-
block form, on a 16x16 PE array with the quantile engine filtering the
outgoing gradients — the complete Procrustes datapath for one layer,
with cycle counts, compared against its dense twin.

Part 2 chains a whole conv stack through the multi-layer engine:
compressed activations bridge the forward-to-weight-update window
(Section IV-A), and masked SGD updates land directly on the
CSB-resident weights across iterations.

Run:  python examples/training_engine_demo.py
"""

import numpy as np

from repro.hw import (
    NetworkTrainingEngine,
    PROCRUSTES_16x16,
    QuantileEngine,
    SparseTrainingEngine,
)
from repro.sparse import CSBTensor


def main() -> None:
    rng = np.random.default_rng(0)
    k, c, size, n = 64, 32, 16, 16
    density = 0.2

    dense_w = rng.normal(size=(k, c, 3, 3)) * 0.1
    sparse_w = dense_w * (rng.uniform(size=dense_w.shape) < density)
    x = np.maximum(rng.normal(size=(n, c, size, size)), 0.0)  # post-ReLU
    dy = rng.normal(size=(n, k, size, size)) * 0.01  # post-BN: dense

    qe = QuantileEngine(sparsity_factor=5.0)
    # Warm the threshold with a few gradient bursts, as a real run's
    # earlier iterations would have.
    for _ in range(30):
        qe.filter(rng.normal(size=8192) * 0.05)
    engine = SparseTrainingEngine(PROCRUSTES_16x16, qe=qe)

    sparse_csb = CSBTensor.from_dense(sparse_w)
    dense_csb = CSBTensor.from_dense(dense_w)
    print(f"layer: {k}x{c}x3x3, input {size}x{size}, minibatch {n}")
    print(f"CSB: nnz={sparse_csb.nnz} ({sparse_csb.density:.0%} dense), "
          f"compression {sparse_csb.compression_ratio():.1f}x\n")

    print(f"{'phase':6s} {'dense cycles':>14s} {'sparse cycles':>14s} "
          f"{'speedup':>8s}")
    dense_phases = engine.train_step(x, dy, dense_csb, padding=1)
    sparse_phases = engine.train_step(x, dy, sparse_csb, padding=1)
    for phase in ("fw", "bw", "wu"):
        d, s = dense_phases[phase], sparse_phases[phase]
        print(f"{phase:6s} {d.cycles:14,d} {s.cycles:14,d} "
              f"{d.cycles / s.cycles:7.2f}x")
    print("(wu is identical in both columns: the weight-update phase "
          "exploits *activation* sparsity, not weight sparsity —")
    dense_x = rng.normal(size=x.shape)  # a hypothetical dense input
    wu_dense_x, _, _ = engine.weight_update(dense_x, dy, sparse_csb, padding=1)
    wu_sparse_x = sparse_phases["wu"]
    print(f" with dense activations wu would cost "
          f"{wu_dense_x.cycles:,} cycles vs {wu_sparse_x.cycles:,} "
          f"with the {np.count_nonzero(x)/x.size:.0%}-dense ReLU output)")

    # The weight-update write-back, QE-filtered and compressed.
    _, keep, surviving = engine.weight_update(x, dy, sparse_csb, padding=1)
    print(f"\nQE write-back: kept {keep.mean():.1%} of gradients "
          f"(threshold {qe.threshold:.2e}); compressed gradient tensor "
          f"holds {surviving.nnz:,} values")

    # Fidelity: the backward pass through the rotated CSB equals the
    # autograd reference exactly.
    from repro.nn import functional as F

    y, cache = F.conv2d(x, sparse_w, padding=1)
    ref_dx, _, _ = F.conv2d_backward(dy, cache)
    engine_dx = engine.backward(dy, sparse_csb, padding=1).tensor
    print(f"backward-pass max deviation from autograd: "
          f"{np.abs(engine_dx - ref_dx).max():.2e}")

    # ------------------------------------------------------------------
    # Part 2: a whole network, iterating.
    # ------------------------------------------------------------------
    print("\n--- multi-layer engine: 3-conv stack, 5 iterations ---")

    def sparse(shape, density=0.3):
        w = rng.normal(size=shape) * 0.2
        return w * (rng.uniform(size=shape) < density)

    net = NetworkTrainingEngine(
        PROCRUSTES_16x16,
        [
            ("c0", sparse((16, 8, 3, 3)), 1),
            ("c1", sparse((16, 16, 3, 3)), 1),
            ("c2", sparse((8, 16, 3, 3)), 1),
        ],
        lr=0.01,
    )
    xs = rng.normal(size=(8, 8, 12, 12))
    print(f"weight density: {net.weight_density():.1%}")
    for it in range(5):
        out, _ = net.forward(xs)
        dy_net = (out - 1.0) / out.size  # pull outputs toward 1.0
        result = net.train_step(xs, dy_net)
        print(f"iter {it}: {result.total_cycles:>9,} cycles, "
              f"{result.total_macs:>11,} MACs, "
              f"acts compressed {result.activation_compression:.2f}x, "
              f"density {net.weight_density():.1%}")
    print("pruned positions remain exactly zero across all iterations;")
    print("stored activations round-trip bit-exactly through the")
    print("compressed fw->wu buffer (asserted in tests/test_network_engine.py)")


if __name__ == "__main__":
    main()
