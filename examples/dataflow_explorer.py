"""Dataflow exploration: why Procrustes picks the K,N mapping.

Sweeps the four spatial mappings (activation-stationary P,Q; the
classic weight-stationary C,K; and the two spatial-minibatch mappings
C,N and K,N) over ResNet18 and MobileNet v2, dense and sparse,
reproducing the reasoning behind Figures 18 and 19: energy barely
moves with the mapping, so pick the fastest — which is K,N, because it
load-balances on the simple interconnect and keeps utilization high in
every layer (including MobileNet's depthwise convolutions, where C,K
starves).

Run:  python examples/dataflow_explorer.py
"""

from repro.dataflow import simulate
from repro.harness.common import (
    dense_profile_for,
    render_table,
    sparse_profile_for,
)
from repro.hw import BASELINE_16x16, PROCRUSTES_16x16


def main() -> None:
    rows = []
    for network in ("resnet18", "mobilenet-v2"):
        sparse_profile = sparse_profile_for(network)
        dense_profile = dense_profile_for(network)
        for mapping in ("PQ", "CK", "CN", "KN"):
            dense = simulate(
                dense_profile, mapping, arch=BASELINE_16x16, n=64,
                sparse=False,
            )
            sparse = simulate(
                sparse_profile, mapping, arch=PROCRUSTES_16x16, n=64
            )
            rows.append(
                [
                    network,
                    mapping,
                    f"{dense.total_cycles:.3e}",
                    f"{sparse.total_cycles:.3e}",
                    f"{dense.total_cycles / sparse.total_cycles:.2f}x",
                    f"{sparse.total_energy_j:.2f}",
                ]
            )
    print(
        render_table(
            [
                "network",
                "mapping",
                "dense cycles",
                "sparse cycles",
                "speedup",
                "sparse J",
            ],
            rows,
        )
    )
    print()
    print("Note how the energy column barely moves with the mapping while")
    print("cycles swing by an order of magnitude — the paper's argument for")
    print("choosing the spatial-minibatch K,N dataflow by speed alone.")


if __name__ == "__main__":
    main()
