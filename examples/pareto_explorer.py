"""Pareto design-space exploration: search instead of enumerate.

The paper compares four hand-picked mappings at one geometry
(Figures 18/19).  This example lets `repro.explore` search a small
design space — mapping x array side x register-file size for the
VGG-S stand-in — under the fabric-area and mask-residency constraints,
and reports the latency/energy/area Pareto frontier three ways:

1. exhaustively (grid strategy — ground truth for a space this small),
2. with a budgeted greedy refinement (random warm-up + frontier
   neighborhood walks), reusing the same result cache,
3. as a frontier diff: what the budgeted search missed or matched.

Run:  python examples/pareto_explorer.py
"""

import tempfile

from repro.explore import (
    Explorer,
    GreedyRefineStrategy,
    GridStrategy,
    SearchSpace,
    fabric_fraction_limit,
    frontier_diff,
    mask_residency_limit,
)
from repro.harness.common import render_table
from repro.report.ascii_plot import scatter_plot
from repro.sweep import ResultCache


def build_space() -> SearchSpace:
    return SearchSpace(
        {
            "mapping": ["PQ", "CK", "CN", "KN"],
            "array_side": [8, 16, 32],
            "rf_bytes": [512, 1024, 2048],
        },
        fixed={"network": "vgg-s", "sparse": True, "sparsity_factor": 5.8},
        constraints=[fabric_fraction_limit(0.35), mask_residency_limit()],
    )


def show(result) -> None:
    rows = result.frontier_rows()
    headers = [h for h in rows[0] if h not in ("network", "sparse")]
    print(
        f"  {len(result.frontier)} non-dominated of {result.n_evaluated} "
        f"evaluated ({result.n_cached} from cache) in "
        f"{result.wall_time_s:.1f}s"
    )
    print(render_table(headers, [[r[h] for h in headers] for r in rows]))


def main() -> None:
    space = build_space()
    with tempfile.TemporaryDirectory() as tmp:
        explorer = Explorer(cache=ResultCache(tmp))

        print("== exhaustive grid (ground truth) ==")
        exact = explorer.run(
            space, GridStrategy(), budget=64, seed=1, name="grid"
        )
        show(exact)

        print()
        print("== greedy refinement under a 24-evaluation budget ==")
        greedy = explorer.run(
            space,
            GreedyRefineStrategy(n_init=12, max_rounds=6),
            budget=24,
            seed=1,
            name="greedy",
        )
        show(greedy)

        print()
        diff = frontier_diff(greedy.frontier, exact.frontier)
        print(f"greedy vs exhaustive frontier: {diff.summary()}")

        cycles, energy = (
            [float(e.values["total_cycles"]) for e in exact.evaluations],
            [float(e.values["total_j"]) for e in exact.evaluations],
        )
        frontier_xy = (
            [float(p.values["total_cycles"]) for p in exact.frontier_points()],
            [float(p.values["total_j"]) for p in exact.frontier_points()],
        )
        print()
        print(
            scatter_plot(
                {"evaluated": (cycles, energy), "frontier": frontier_xy},
                title="energy vs latency (grid search)",
                x_label="total_cycles",
                y_label="total_j",
            )
        )


if __name__ == "__main__":
    main()
