"""Validating the analytical model with the cycle-level simulator.

The paper's evaluation uses Timeloop-style analytical accounting; this
example cross-checks it the way an architect would before trusting the
numbers: run the same sparse layer through the cycle-level simulator
(which models bus bandwidth, register-file capacity, and double
buffering) and compare.

Shows three regimes on a VGG-S-shaped layer:
1. ideal fabric + ample RF  -> cyclesim equals the analytical model;
2. the paper's 1 KB RF      -> input-channel chunking costs ~15%;
3. single-word buses        -> modest stalls for K,N; balancing C,K
                               backfires exactly as Figure 10 argues.

Run:  python examples/cyclesim_vs_analytical.py
"""

from dataclasses import replace

import numpy as np

from repro.hw import (
    CycleLevelSimulator,
    IDEAL_FABRIC,
    PEArraySimulator,
    PROCRUSTES_16x16,
    SINGLE_WORD_FABRIC,
)
from repro.report import bar_chart


def main() -> None:
    rng = np.random.default_rng(11)
    mask = rng.uniform(size=(64, 64, 3, 3)) < 0.19
    weight = np.where(mask, rng.normal(size=mask.shape), 0.0)
    p = q = 8
    n = 16

    # The analytical reference (max-over-PEs accounting).
    x = rng.normal(size=(n, 64, p + 2, q + 2))
    _, analytical = PEArraySimulator(PROCRUSTES_16x16).run_conv_kn(x, weight)
    print(f"analytical model:        {analytical.cycles:8.0f} cycles "
          f"({analytical.utilization:.0%} utilization)")

    # Regime 1: assumptions granted -> exact agreement.
    big_rf = replace(PROCRUSTES_16x16, name="big-rf", rf_bytes_per_pe=1 << 20)
    ideal = CycleLevelSimulator(big_rf, IDEAL_FABRIC).run_conv(
        mask, p=p, q=q, n=n, mapping="KN"
    )
    print(f"cyclesim, ideal fabric:  {ideal.cycles:8.0f} cycles "
          f"(match: {ideal.cycles / analytical.cycles:.4f}x)")

    # Regime 2: the real 1 KB register file forces chunking.
    chunked = CycleLevelSimulator(PROCRUSTES_16x16, IDEAL_FABRIC).run_conv(
        mask, p=p, q=q, n=n, mapping="KN"
    )
    print(f"cyclesim, 1KB RF:        {chunked.cycles:8.0f} cycles "
          f"(chunking overhead {chunked.cycles / analytical.cycles - 1:+.1%})")

    # Regime 3: finite buses; the four mapping/balance combinations.
    sim = CycleLevelSimulator(PROCRUSTES_16x16, SINGLE_WORD_FABRIC)
    results = {}
    for mapping in ("KN", "CK"):
        for balance in (False, True):
            r = sim.run_conv(mask, p=p, q=q, n=n,
                             mapping=mapping, balance=balance)
            label = f"{mapping}{'-bal' if balance else '    '}"
            results[label] = r
    print("\nSingle-word fabric (cycles; stalls in parentheses):")
    print(bar_chart(
        list(results),
        [r.cycles for r in results.values()],
        unit=" cyc",
    ))
    for label, r in results.items():
        hist = r.bound_histogram()
        print(f"  {label}: {r.stall_fraction:5.1%} stalled; "
              f"sets bound by {hist}")
    print("\nNote how CK-bal has the *lowest* compute but high total:")
    print("balancing C,K floods the buses (Figure 10); K,N balancing")
    print("is free because it swaps work along the dimension the")
    print("broadcast does not use (Figure 12).")


if __name__ == "__main__":
    main()
