"""Training-in-the-loop campaign: spec → trajectory → replay → report.

The paper's headline numbers are about *whole training runs*: DropBack
pruning makes sparsity emerge epoch by epoch, and the accelerator
exploits whatever density each epoch actually has (Table 2,
Figures 15/16).  This example walks the `repro.campaign` loop that
measures exactly that:

1. a `CampaignSpec` pins a seeded DropBack training recipe;
2. `run_campaign` trains the mini model, recording per-layer
   per-epoch weight/activation densities into a content-addressed
   `TrajectoryStore` (a second run is a pure cache hit — shown);
3. `replay_trajectory` walks the measured trajectory through the
   accelerator model for two architecture points and compares
   whole-run latency/energy;
4. the dense SGD baseline gets the same treatment, reproducing the
   paper's sparse-vs-dense training-time argument with measured
   rather than assumed densities;
5. the per-epoch curves are exported through `repro.report`.

Run:  python examples/training_campaign.py
"""

import tempfile
from pathlib import Path

from repro.campaign import (
    CampaignSpec,
    TrajectoryStore,
    replay_trajectory,
    run_campaign,
)
from repro.harness.common import render_table
from repro.report import ResultsDirectory
from repro.report.ascii_plot import line_plot


def train(spec: CampaignSpec, store: TrajectoryStore):
    result = run_campaign(spec, store=store)
    origin = "store hit" if result.cached else "trained"
    trajectory = result.trajectory
    print(
        f"  {trajectory.name}: {trajectory.n_epochs} epochs, "
        f"{trajectory.total_iterations} iterations ({origin}); "
        f"final val acc {trajectory.records[-1].val_accuracy:.3f}, "
        f"achieved sparsity "
        f"{trajectory.records[-1].achieved_sparsity:.2f}x"
    )
    return trajectory


def main() -> None:
    spec = CampaignSpec(
        model="vgg-s",
        mode="procrustes",
        epochs=4,
        sparsity_factor=5.0,
        seed=0,
        samples_per_class=32,
    )

    with tempfile.TemporaryDirectory() as tmp:
        store = TrajectoryStore(Path(tmp) / "campaign")

        print("== 1. train the campaign (measured trajectory)")
        trajectory = train(spec, store)

        print("== 2. re-run: same spec, no training")
        train(spec, store)

        print("== 3. replay the trajectory on two architecture points")
        rows = []
        for mapping in ("KN", "CK"):
            replay = replay_trajectory(
                trajectory, mapping=mapping, n=spec.batch_size, seed=spec.seed
            )
            rows.append(
                [
                    mapping,
                    replay.run_cycles,
                    replay.run_energy_j,
                    replay.epochs[0].cycles_per_iteration,
                    replay.epochs[-1].cycles_per_iteration,
                ]
            )
        print(
            render_table(
                [
                    "mapping",
                    "run cycles",
                    "run J",
                    "cycles/iter (ep 1)",
                    f"cycles/iter (ep {trajectory.n_epochs})",
                ],
                rows,
            )
        )

        print("== 4. dense SGD baseline under the same recipe")
        baseline = train(spec.with_(mode="sgd"), store)
        sparse_replay = replay_trajectory(
            trajectory, mapping="KN", n=spec.batch_size, seed=spec.seed
        )
        dense_replay = replay_trajectory(
            baseline, mapping="KN", n=spec.batch_size, sparse=False,
            seed=spec.seed,
        )
        speedup = dense_replay.run_cycles / sparse_replay.run_cycles
        print(
            f"  whole-run speedup, Procrustes vs dense SGD: {speedup:.2f}x "
            f"({sparse_replay.run_cycles:.4g} vs "
            f"{dense_replay.run_cycles:.4g} cycles)"
        )
        print(
            line_plot(
                {
                    "procrustes": sparse_replay.curves()[
                        "cycles_per_iteration"
                    ],
                    "dense sgd": dense_replay.curves()[
                        "cycles_per_iteration"
                    ],
                },
                title="per-iteration cycles along the training trajectory",
            )
        )

        print("== 5. export the per-epoch curves through repro.report")
        results = ResultsDirectory(Path(tmp) / "results")
        sparse_replay.save(results)
        record = results.load_record(
            f"campaign-{trajectory.name.replace('/', '-')}-KN"
        )
        print(
            f"  exported series: {sorted(record['series'])}"
        )


if __name__ == "__main__":
    main()
