"""Sorting-free weight selection: the QE unit in action.

Replaces the O(n log n) global sort of Dropback with the constant-work
DUMIQUE threshold and shows (a) the threshold converging onto the true
quantile of a gradient-magnitude stream, (b) the comparison-count
savings the paper argues for (log2(n!) comparisons vs. one per
gradient), and (c) the hardware QE unit filtering a gradient stream at
four updates per cycle.

Run:  python examples/quantile_vs_sort.py
"""

import math

import numpy as np

from repro.core import DumiqueEstimator, quantile_for_sparsity
from repro.hw import QuantileEngine


def main() -> None:
    rng = np.random.default_rng(0)
    n_weights = 200_000
    target_factor = 7.5
    q = quantile_for_sparsity(target_factor)

    # A plausible accumulated-gradient magnitude stream (lognormal).
    stream = rng.lognormal(mean=-4.0, sigma=1.2, size=n_weights)
    truth = float(np.quantile(stream, q))

    est = DumiqueEstimator(q, rho=1e-3, initial=1e-6)
    checkpoints = {}
    for i, value in enumerate(stream):
        est.update(float(value))
        if i + 1 in (1000, 10_000, 50_000, n_weights):
            checkpoints[i + 1] = est.estimate

    print(f"target: {target_factor}x sparsity -> q = {q:.4f}, "
          f"true threshold = {truth:.4e}")
    for seen, estimate in checkpoints.items():
        print(f"  after {seen:>7,} gradients: theta = {estimate:.4e} "
              f"({estimate / truth:.2f}x of truth)")

    sort_comparisons = math.lgamma(n_weights + 1) / math.log(2)
    print(f"\ncost of exact selection: sort needs ~log2(n!) = "
          f"{sort_comparisons / 1e6:.0f}M comparisons")
    print(f"cost of quantile selection: {n_weights / 1e6:.1f}M comparisons "
          "(one per gradient)")

    # The hardware unit: filtering a burst stream at 4 updates/cycle.
    qe = QuantileEngine(sparsity_factor=target_factor, updates_per_cycle=4)
    for _ in range(20):
        qe.filter(rng.lognormal(-4.0, 1.2, size=50_000))
    print(f"\nQE unit after {qe.stats.observed / 1e6:.1f}M gradients: "
          f"retained {qe.stats.retain_fraction:.1%} "
          f"(target {1 / target_factor:.1%}), "
          f"{qe.stats.cycles:,} cycles consumed")
    print(f"keeps up with the paper's peak rate (4/cycle): "
          f"{qe.keeps_up_with(4.0)}")


if __name__ == "__main__":
    main()
