"""A tour of sparse weight formats under training access patterns.

Walks one sparse conv layer and one fc layer through the three weight
formats the paper discusses (Section II-D):

* Procrustes' compressed sparse block (CSB) — rotate kernels 180
  degrees and transpose fc matrices *on the compressed data*;
* EIE's interleaved CSC — cheap column streams, expensive rows;
* SCNN's input-channel-grouped run-length layout — cheap forward
  groups, expensive backward gathers.

Prints the per-phase elements-touched table and demonstrates the CSB
rotation/transposition round-trips numerically.

Run:  python examples/format_tour.py
"""

import numpy as np

from repro.report import bar_chart
from repro.sparse import CSBTensor, EIEMatrix, access_costs


def main() -> None:
    rng = np.random.default_rng(7)

    # A Dropback-sparse conv layer (19% density ~ VGG-S at 5.2x).
    conv = rng.normal(size=(32, 32, 3, 3))
    conv[rng.uniform(size=conv.shape) > 0.19] = 0.0

    # ------------------------------------------------------------------
    # 1. CSB supports the backward pass on compressed data.
    # ------------------------------------------------------------------
    csb = CSBTensor.from_dense(conv)
    rotated = csb.rotate_180()
    expect = conv[:, :, ::-1, ::-1]
    assert np.allclose(rotated.to_dense(), expect)
    print("CSB: 180-degree kernel rotation on packed values: OK")
    print(f"     density {csb.density:.1%}, "
          f"compression {csb.compression_ratio():.2f}x vs dense FP32")

    fc = rng.normal(size=(64, 48))
    fc[rng.uniform(size=fc.shape) > 0.19] = 0.0
    csb_fc = CSBTensor.from_dense(fc)
    assert np.allclose(csb_fc.transpose().to_dense(), fc.T)
    print("CSB: piecewise fc transpose on packed values: OK")

    # ------------------------------------------------------------------
    # 2. EIE's CSC: row access must walk the columns.
    # ------------------------------------------------------------------
    eie = EIEMatrix.from_dense(fc)
    _, _, col_cost = eie.read_column(5)
    _, _, row_cost = eie.read_row(32)
    print(f"\nEIE-CSC on the same fc layer:")
    print(f"     one column (forward order):  {col_cost:4d} entries touched")
    print(f"     one row (backward order):    {row_cost:4d} entries touched "
          f"({row_cost / max(1, col_cost):.0f}x)")

    # ------------------------------------------------------------------
    # 3. The full per-phase cost table (Section II-D, quantified).
    # ------------------------------------------------------------------
    print("\nPer-phase elements touched (whole conv tensor):")
    table = access_costs(conv)
    print(bar_chart(
        [c.format_name for c in table],
        [float(c.backward) for c in table],
        title="backward-pass cost by format",
        unit=" elems",
    ))
    for costs in table:
        update = "in-place" if costs.updatable else "re-encode"
        print(f"  {costs.format_name:12} bw/fw = {costs.backward_penalty:5.2f}  "
              f"weight update: {update}")


if __name__ == "__main__":
    main()
