"""Algorithm/hardware co-design loop: measured masks drive the model.

The paper's core thesis is that sparse *training* needs co-design:
the algorithm is adapted to hardware (decay, quantile selection) and
the hardware to the algorithm (CSB format, K,N dataflow, half-tile
balancing).  This example closes the loop end to end:

1. train a mini network with the full Procrustes algorithm;
2. extract its real Dropback masks and measured post-ReLU activation
   densities;
3. feed both to the architecture model (instead of synthetic
   profiles) and compare dense vs. sparse accelerator cost;
4. demonstrate the CSB format and the WR unit on the trained weights.

Run:  python examples/codesign_loop.py
"""

import numpy as np

from repro.core import DropbackConfig, DropbackOptimizer
from repro.dataflow import simulate
from repro.hw import BASELINE_16x16, PROCRUSTES_16x16, WeightRecomputeUnit
from repro.models import mini_vgg_s
from repro.nn import Trainer, make_blob_images
from repro.sparse import CSBTensor
from repro.workloads import conv, dense_profile, fc, profile_from_masks


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Train with Procrustes.
    # ------------------------------------------------------------------
    train, val = make_blob_images(
        n_classes=6, samples_per_class=60, size=16, seed=7
    )
    model = mini_vgg_s(n_classes=train.n_classes, seed=0)
    optimizer = DropbackOptimizer(
        model.parameters(),
        DropbackConfig(
            sparsity_factor=5.0,
            lr=0.08,
            selection="quantile",
            init_decay=0.9,
            init_decay_zero_after=60,
        ),
    )
    trainer = Trainer(model, optimizer, train, val, batch_size=16, seed=0)
    history = trainer.run(epochs=8)
    print(f"trained: accuracy {history.final_val_accuracy:.3f}, "
          f"sparsity {optimizer.achieved_sparsity_factor():.2f}x")

    # ------------------------------------------------------------------
    # 2. Measured masks and activation densities.
    # ------------------------------------------------------------------
    masks = optimizer.masks()
    act_density = trainer.mean_activation_densities()
    print(f"measured activation densities: "
          f"{ {k: round(v, 2) for k, v in act_density.items()} }")

    specs = []
    for name, shape in model.weight_shapes().items():
        if len(shape) == 4:
            specs.append(conv(name, c=shape[1], k=shape[0], h=16, r=shape[2]))
        else:
            specs.append(fc(name, shape[1], shape[0]))
    measured = profile_from_masks("mini-vgg", specs, masks)

    # ------------------------------------------------------------------
    # 3. Accelerator cost on the measured profile.
    # ------------------------------------------------------------------
    sparse_sim = simulate(measured, "KN", arch=PROCRUSTES_16x16, n=32)
    dense_sim = simulate(
        dense_profile("mini-vgg", specs), "KN", arch=BASELINE_16x16, n=32,
        sparse=False,
    )
    print("accelerator model on *measured* sparsity:")
    print(f"  speedup {dense_sim.total_cycles / sparse_sim.total_cycles:.2f}x,"
          f" energy saving "
          f"{dense_sim.total_energy_j / sparse_sim.total_energy_j:.2f}x")

    # ------------------------------------------------------------------
    # 4. The trained weights, as the hardware would hold them.
    # ------------------------------------------------------------------
    first_conv = next(p for p in model.parameters() if p.data.ndim == 4)
    csb = CSBTensor.from_dense(first_conv.data)
    print(f"CSB encoding of {first_conv.name}: nnz={csb.nnz}, "
          f"density={csb.density:.2f}, "
          f"compression {csb.compression_ratio():.2f}x")
    rotated = csb.rotate_180()
    assert np.allclose(
        rotated.to_dense(), first_conv.data[:, :, ::-1, ::-1]
    )
    print("  180-degree rotation for the backward pass: OK "
          "(values reversed in place, no decompression)")

    wr = WeightRecomputeUnit(
        seed=1, sigma=0.05, decay=optimizer.decay_schedule
    )
    regenerated = wr.initial_weights(
        np.arange(16), iteration=optimizer.iteration
    )
    print(f"  WR unit regenerates initial weights at iteration "
          f"{optimizer.iteration}: all zero = "
          f"{bool((regenerated == 0).all())} (decay has flushed)")


if __name__ == "__main__":
    main()
