"""Training-memory planning across sparse-training methods.

Uses the sparsity-schedule library and the footprint model to answer
the practical question behind the paper's introduction: *if I train
ResNet18 with each published sparse-training method, what do weights,
optimizer state, and activations cost in memory — and when does sparse
storage start paying?*

Also prices the interconnect options with the fabric cost model,
showing why balancing the C,K dataflow (Figure 10) would cost more
silicon than all Procrustes additions combined.

Run:  python examples/memory_planner.py
"""

from repro.core import PAPER_SCHEDULES
from repro.hw import (
    BASELINE_16x16,
    FabricCostModel,
    training_footprint,
    weight_footprint,
)
from repro.models import get_specs
from repro.report import bar_chart, sparkline

ITERATIONS = 90 * 5_005  # the standard 90-epoch ImageNet recipe


def main() -> None:
    specs = get_specs("resnet18")
    weight_count = sum(s.weight_count for s in specs)
    print(f"ResNet18: {weight_count / 1e6:.1f}M weights, "
          f"{ITERATIONS:,} training iterations\n")

    # ------------------------------------------------------------------
    # 1. Weight-storage trajectory per method.
    # ------------------------------------------------------------------
    print("Weight storage over training (sparkline, MB):")
    for name, schedule in PAPER_SCHEDULES.items():
        wf = weight_footprint(schedule, weight_count, ITERATIONS, samples=60)
        mb = wf.bits / 8e6
        switch = ("no format switch" if wf.switch_iteration == 0
                  else "never compressed" if wf.switch_iteration is None
                  else f"switches at iter {wf.switch_iteration:,}")
        print(f"  {name:14} {sparkline(mb.tolist())}  "
              f"peak {wf.peak_bits / 8e6:6.1f} MB  ({switch})")

    # ------------------------------------------------------------------
    # 2. Peak training memory, all components.
    # ------------------------------------------------------------------
    print("\nPeak training memory (weights + optimizer state + acts):")
    totals = {}
    for name, schedule in PAPER_SCHEDULES.items():
        tf = training_footprint(schedule, specs, n=64,
                                total_iterations=ITERATIONS)
        totals[name] = tf.total_bits / 8e6
    print(bar_chart(list(totals), list(totals.values()), unit=" MB"))

    # ------------------------------------------------------------------
    # 3. What the "complex interconnect" would cost instead.
    # ------------------------------------------------------------------
    model = FabricCostModel(BASELINE_16x16)
    print("\nInterconnect options at 16x16 (area, mm^2):")
    options = model.options()
    print(bar_chart(
        [f.name for f in options],
        [f.area_mm2() for f in options],
        unit=" mm2",
    ))
    simple, balanced_ck = options[0], options[1]
    print(f"\nBalancing C,K needs {balanced_ck.area_mm2() - simple.area_mm2():.1f} "
          f"mm^2 of extra fabric — Procrustes balances K,N for free.")


if __name__ == "__main__":
    main()
